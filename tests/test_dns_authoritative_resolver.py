"""Tests for authoritative answering and the stub resolver."""

import pytest

from repro.dns.authoritative import AnswerPolicy, AuthoritativeNameServer, AuthoritativeRecord
from repro.dns.resolver import StubResolver, VantagePoint, resolve_from_vantage_points
from repro.dns.zone import RTYPE_A, RTYPE_AAAA
from repro.netmodel.geo import world_locations

LOCATIONS = world_locations()
EU = next(loc for loc in LOCATIONS if loc.continent == "EU")
EU2 = [loc for loc in LOCATIONS if loc.continent == "EU"][1]
US = next(loc for loc in LOCATIONS if loc.continent == "NA")


def _record(name, ip, location):
    return AuthoritativeRecord(name, RTYPE_A, ip, location)


def test_rejects_non_address_records():
    with pytest.raises(ValueError):
        AuthoritativeRecord("a.example", "CNAME", "b.example")


def test_all_policy_returns_everything():
    server = AuthoritativeNameServer()
    server.register(_record("gw.example", "10.0.0.1", EU))
    server.register(_record("gw.example", "10.0.0.2", US))
    answer = server.query("gw.example", RTYPE_A)
    assert {r.address for r in answer} == {"10.0.0.1", "10.0.0.2"}


def test_round_robin_rotates_and_eventually_reveals_all():
    server = AuthoritativeNameServer()
    records = [_record("gw.example", f"10.0.0.{i}", EU) for i in range(1, 9)]
    server.register_many(records, policy=AnswerPolicy.ROUND_ROBIN, window=2)
    seen = set()
    for _ in range(10):
        for record in server.query("gw.example", RTYPE_A):
            seen.add(record.address)
    assert seen == {f"10.0.0.{i}" for i in range(1, 9)}
    # A single query only returns the window.
    assert len(server.query("gw.example", RTYPE_A)) == 2


def test_geo_policy_prefers_client_continent():
    server = AuthoritativeNameServer()
    server.register(_record("gw.example", "10.0.0.1", EU), policy=AnswerPolicy.GEO)
    server.register(_record("gw.example", "10.0.0.2", US), policy=AnswerPolicy.GEO)
    eu_answer = server.query("gw.example", RTYPE_A, client_location=EU2)
    assert {r.address for r in eu_answer} == {"10.0.0.1"}
    us_answer = server.query("gw.example", RTYPE_A, client_location=US)
    assert {r.address for r in us_answer} == {"10.0.0.2"}


def test_geo_policy_falls_back_when_no_local_presence():
    asia = next(loc for loc in LOCATIONS if loc.continent == "AS")
    server = AuthoritativeNameServer()
    server.register(_record("gw.example", "10.0.0.1", EU), policy=AnswerPolicy.GEO)
    answer = server.query("gw.example", RTYPE_A, client_location=asia)
    assert answer


def test_unknown_name_returns_empty():
    server = AuthoritativeNameServer()
    assert server.query("missing.example", RTYPE_A) == []


def test_stub_resolver_merges_retries():
    server = AuthoritativeNameServer()
    records = [_record("gw.example", f"10.0.0.{i}", EU) for i in range(1, 7)]
    server.register_many(records, policy=AnswerPolicy.ROUND_ROBIN, window=2)
    resolver = StubResolver(server, VantagePoint("eu", EU), retries=3)
    answer = resolver.resolve("gw.example")
    assert len(answer.addresses) >= 4
    assert resolver.queries_issued == 3


def test_resolver_rejects_zero_retries():
    server = AuthoritativeNameServer()
    with pytest.raises(ValueError):
        StubResolver(server, VantagePoint("eu", EU), retries=0)


def test_multiple_vantage_points_increase_coverage():
    server = AuthoritativeNameServer()
    server.register(_record("gw.example", "10.0.0.1", EU), policy=AnswerPolicy.GEO)
    server.register(_record("gw.example", "10.0.0.2", US), policy=AnswerPolicy.GEO)
    single = resolve_from_vantage_points(server, [VantagePoint("eu", EU)], ["gw.example"], rtypes=(RTYPE_A,))
    both = resolve_from_vantage_points(
        server, [VantagePoint("eu", EU), VantagePoint("us", US)], ["gw.example"], rtypes=(RTYPE_A,)
    )
    assert len(both["gw.example"]) > len(single["gw.example"])


def test_resolver_resolves_aaaa_separately():
    server = AuthoritativeNameServer()
    server.register(AuthoritativeRecord("gw.example", RTYPE_AAAA, "fd00::1", EU))
    resolver = StubResolver(server, VantagePoint("eu", EU))
    assert resolver.resolve("gw.example", RTYPE_AAAA).addresses == ("fd00::1",)
    assert resolver.resolve("gw.example", RTYPE_A).addresses == ()
