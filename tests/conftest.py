"""Shared fixtures: a small deterministic world and pipeline run reused by tests."""

from __future__ import annotations

import pytest

from repro.core.pipeline import DiscoveryPipeline
from repro.experiments.context import ExperimentContext, build_context
from repro.flows.anonymize import AnonymizationMap
from repro.simulation.config import ScenarioConfig
from repro.simulation.rng import RngRegistry
from repro.simulation.world import build_world


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    """The small scenario configuration used throughout the unit tests."""
    return ScenarioConfig.small(seed=7)


@pytest.fixture(scope="session")
def small_world(small_config):
    """A small synthetic world shared by all tests (read-only usage expected)."""
    return build_world(small_config)


@pytest.fixture(scope="session")
def small_pipeline_result(small_world):
    """The discovery-pipeline result for the small world."""
    return DiscoveryPipeline(small_world).run()


@pytest.fixture(scope="session")
def small_context(small_config) -> ExperimentContext:
    """A full experiment context (world + pipeline + flows) on the small scenario."""
    return build_context(small_config)


@pytest.fixture(scope="session")
def anonymization() -> AnonymizationMap:
    """The provider anonymization map."""
    return AnonymizationMap.build()


@pytest.fixture()
def rng() -> RngRegistry:
    """A fresh deterministic RNG registry."""
    return RngRegistry(seed=42)
