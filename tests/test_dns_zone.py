"""Tests for DNS zones and records."""

import pytest

from repro.dns.zone import (
    RTYPE_A,
    RTYPE_AAAA,
    RTYPE_CNAME,
    ResourceRecord,
    Zone,
    ZoneSet,
    normalize_name,
)


def test_normalize_name():
    assert normalize_name("WWW.Example.COM.") == "www.example.com"
    assert normalize_name("  example.com ") == "example.com"


def test_record_normalisation_and_key():
    record = ResourceRecord("Dev.Example.COM.", RTYPE_A, "10.0.0.1")
    assert record.name == "dev.example.com"
    assert record.key == ("dev.example.com", RTYPE_A)


def test_invalid_rtype_rejected():
    with pytest.raises(ValueError):
        ResourceRecord("a.example.com", "TXT", "hello")


def test_zone_add_and_lookup():
    zone = Zone("example.com")
    zone.add(ResourceRecord("a.example.com", RTYPE_A, "10.0.0.1"))
    zone.add_address("b.example.com", "fd00::1")
    assert [r.rdata for r in zone.lookup("a.example.com", RTYPE_A)] == ["10.0.0.1"]
    assert zone.lookup("b.example.com", RTYPE_AAAA)[0].rdata == "fd00::1"
    assert zone.lookup("missing.example.com", RTYPE_A) == []
    assert len(zone) == 2
    assert zone.names() == ["a.example.com", "b.example.com"]


def test_zone_rejects_out_of_zone_names():
    zone = Zone("example.com")
    with pytest.raises(ValueError):
        zone.add(ResourceRecord("a.other.org", RTYPE_A, "10.0.0.1"))


def test_zone_deduplicates_records():
    zone = Zone("example.com")
    record = ResourceRecord("a.example.com", RTYPE_A, "10.0.0.1")
    zone.add(record)
    zone.add(record)
    assert len(zone) == 1


def test_zoneset_selects_most_specific_zone():
    parent = Zone("example.com")
    child = Zone("iot.example.com")
    parent.add_address("a.example.com", "10.0.0.1")
    child.add_address("gw.iot.example.com", "10.0.0.2")
    zones = ZoneSet([parent, child])
    assert zones.zone_for("gw.iot.example.com") is child
    assert zones.zone_for("a.example.com") is parent
    assert zones.zone_for("other.org") is None
    assert zones.lookup("gw.iot.example.com", RTYPE_A)[0].rdata == "10.0.0.2"
    assert "a.example.com" in zones.all_names()


def test_cname_records_supported():
    zone = Zone("example.com")
    zone.add(ResourceRecord("alias.example.com", RTYPE_CNAME, "target.example.com."))
    assert zone.lookup("alias.example.com", RTYPE_CNAME)[0].rdata == "target.example.com"
