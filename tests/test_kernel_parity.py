"""Differential kernel-parity harness (the PR-9 contract).

Every grouped aggregation runs on one of three interchangeable backends
(:mod:`repro.flows.kernels`): the reference dict loops, the fused pure-python
kernels, and the optional numpy kernels.  This module makes their equivalence
a fuzzed, CI-enforced contract:

* seeded adversarial tables -- empty tables, single-row groups, all-one-group,
  pool-shared slices (empty groups relative to the pool), post-``extend_table``
  merged pools, negative/zero values, >2**31 volumes, and near-2**62 packet
  counts that trip the numpy overflow guard into the python fallback;
* **bit-identical** comparison -- result dicts must match in key order and in
  the exact IEEE-754 bit pattern of every float;
* ``GroupIndex`` caching must never change any analysis output or the
  ``dump_table`` store digest, and stale-index reuse must be impossible after
  every mutating primitive;
* a numpy-blocked subprocess must produce byte-identical analysis output on
  the pure-python kernels (see ``test_numpy_absent_subprocess``).
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import random
import struct
import subprocess
import sys
from array import array
from datetime import datetime, timedelta
from pathlib import Path

import pytest

from repro.flows import kernels
from repro.flows.flowtable import CATEGORICAL_COLUMNS, NUMERIC_COLUMNS, FlowTable
from repro.flows.netflow import make_flow
from repro.store.codec import dump_table

SEEDS = range(6)

_PROVIDERS = ("amazon", "google", "microsoft", "bosch")
_CONTINENTS = ("EU", "NA", "AS")
_REGIONS = ("us-east-1", "eu-west-1", "ap-south-1")
_TRANSPORTS = ("tcp", "udp")

#: Groupings exercised by the fuzzer: categorical single/multi keys plus
#: integer numeric keys (both packable and python-only combinations).
_GROUPINGS = (
    ("provider_key",),
    ("timestamp",),
    ("provider_key", "timestamp"),
    ("provider_key", "server_continent", "transport"),
    ("subscriber_id",),
    ("port",),
    ("provider_key", "subscriber_id"),  # mixed cat/numeric: python-only index
)

_MEMBER_COLUMNS = ("server_ip", "subscriber_id", "sampled", "bytes_down")

_SUM_COLUMNS = (
    ("bytes_down",),
    ("bytes_down", "bytes_up"),
    ("packets_down", "packets_up", "port"),
)


def _backends():
    backends = [kernels.BACKEND_PYTHON]
    if kernels.numpy_available():
        backends.append(kernels.BACKEND_NUMPY)
    return backends


def _random_flow(rng: random.Random, hours: int, subscribers: int):
    """One adversarial flow: negative/zero/huge volumes, signed line ids."""
    roll = rng.random()
    if roll < 0.15:
        bytes_down = 0.0
    elif roll < 0.3:
        bytes_down = -rng.uniform(1, 1e6)  # negative volumes
    elif roll < 0.45:
        bytes_down = rng.uniform(2**31, 2**53)  # >2**31 volumes
    else:
        bytes_down = rng.uniform(1, 1e5)
    return make_flow(
        timestamp=datetime(2022, 3, 1) + timedelta(hours=rng.randrange(hours)),
        subscriber_id=rng.randrange(-subscribers, subscribers),
        subscriber_prefix=f"p{rng.randrange(4)}",
        ip_version=rng.choice((4, 6)),
        provider_key=rng.choice(_PROVIDERS),
        server_ip=f"10.0.0.{rng.randrange(1, 40)}",
        server_continent=rng.choice(_CONTINENTS),
        server_region=rng.choice(_REGIONS),
        transport=rng.choice(_TRANSPORTS),
        port=rng.choice((0, 443, 8883, -1, 2**31 - 1)),
        bytes_down=bytes_down,
        bytes_up=rng.choice((0.0, rng.uniform(1, 1e4))),
    )


def _overflow_rows(table: FlowTable, rng: random.Random, count: int) -> None:
    """Append rows whose packet counts trip the numpy int64 overflow guard."""
    codes = {
        name: [table.encode_value(name, value)] * count
        for name, value in (
            ("timestamp", datetime(2022, 3, 1)),
            ("subscriber_prefix", "p0"),
            ("provider_key", "amazon"),
            ("server_ip", "10.0.0.1"),
            ("server_continent", "EU"),
            ("server_region", "us-east-1"),
            ("transport", "tcp"),
        )
    }
    numeric = {
        "subscriber_id": [rng.randrange(5) for _ in range(count)],
        "ip_version": [4] * count,
        "port": [443] * count,
        "bytes_down": [1.5] * count,
        "bytes_up": [0.5] * count,
        # peak * rows >= 2**62: the numpy kernels must defer to python,
        # whose arbitrary-precision sums stay exact.
        "packets_down": [rng.choice((2**61, -(2**61), 7)) for _ in range(count)],
        "packets_up": [1] * count,
        "sampled": [rng.choice((0, 1)) for _ in range(count)],
    }
    table.append_columns(count, codes=codes, numeric=numeric)


def _adversarial_tables(seed: int):
    """(label, table) pairs covering the adversarial shapes of the contract."""
    rng = random.Random(seed)
    base = FlowTable.from_records(
        _random_flow(rng, hours=6, subscribers=20) for _ in range(rng.randrange(80, 200))
    )
    single_rows = FlowTable.from_records(
        # Row-unique subscriber ids: every (subscriber_id,) group is one row.
        make_flow(
            timestamp=datetime(2022, 3, 1, hour % 24),
            subscriber_id=1000 + index,
            subscriber_prefix="p0",
            ip_version=4,
            provider_key=_PROVIDERS[index % len(_PROVIDERS)],
            server_ip=f"10.0.1.{index % 7}",
            server_continent="EU",
            server_region="eu-west-1",
            transport="tcp",
            port=443,
            bytes_down=float(index),
            bytes_up=0.0,
        )
        for index, hour in enumerate(rng.sample(range(240), 40))
    )
    one_group = FlowTable.from_records(
        make_flow(
            timestamp=datetime(2022, 3, 1),
            subscriber_id=rng.randrange(3),
            subscriber_prefix="p0",
            ip_version=4,
            provider_key="amazon",
            server_ip="10.0.0.1",
            server_continent="EU",
            server_region="eu-west-1",
            transport="tcp",
            port=443,
            bytes_down=rng.uniform(-10, 10),
            bytes_up=1.0,
        )
        for _ in range(30)
    )
    # Pool-shared slice: shares the base pools, so some pool entries have no
    # rows at all in the slice (empty groups relative to the pool).
    sliced = base.select(range(0, len(base), 3))
    # Merged pools: extend_table remaps a table with its own (partly
    # overlapping) pools; also covers append-after-build invalidation.
    merged = base.select(range(len(base)))
    other = FlowTable.from_records(
        _random_flow(rng, hours=10, subscribers=8) for _ in range(60)
    )
    merged.extend_table(other)
    overflow = base.select(range(0, len(base), 2))
    _overflow_rows(overflow, rng, 12)
    return [
        ("base", base),
        ("single-row-groups", single_rows),
        ("all-one-group", one_group),
        ("pool-shared-slice", sliced),
        ("merged-pools", merged),
        ("overflow-packets", overflow),
        ("empty", FlowTable()),
    ]


def _masks(rng: random.Random, rows: int):
    yield None
    yield bytearray(rows)  # all masked out
    yield bytearray(rng.randrange(2) for _ in range(rows))
    yield bytearray(index % 2 for index in range(rows))


def _float_bits(value):
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return value


def _assert_bit_identical(label, reference, candidate):
    """Dicts must match in key order, value types, and exact float bits."""
    assert list(reference) == list(candidate), f"{label}: key order differs"
    for key in reference:
        ref_value, got_value = reference[key], candidate[key]
        assert type(ref_value) is type(got_value), f"{label}[{key!r}]: type differs"
        if isinstance(ref_value, list):
            assert [_float_bits(v) for v in ref_value] == [
                _float_bits(v) for v in got_value
            ], f"{label}[{key!r}]: bits differ"
        else:
            assert _float_bits(ref_value) == _float_bits(got_value), (
                f"{label}[{key!r}]: bits differ"
            )


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    kernels.set_backend(None)


@pytest.mark.parametrize("seed", SEEDS)
def test_backends_bit_identical_on_adversarial_tables(seed):
    """python-reference == fused-python == numpy, exactly, on every shape."""
    for label, table in _adversarial_tables(seed):
        rng = random.Random(seed * 1000 + len(table))
        for mask in _masks(rng, len(table)):
            for by in _GROUPINGS:
                for values in _SUM_COLUMNS:
                    reference = kernels.reference_group_sums(table, by, values, mask)
                    for backend in _backends():
                        kernels.set_backend(backend)
                        table._group_cache.clear()
                        got = table.group_sums(by, values, mask=mask)
                        _assert_bit_identical(
                            f"{label}/sums/{by}/{values}/{backend}", reference, got
                        )
                for of in _MEMBER_COLUMNS:
                    distinct_ref = kernels.reference_group_distinct(table, by, of, mask)
                    count_ref = kernels.reference_group_distinct_count(table, by, of, mask)
                    for backend in _backends():
                        kernels.set_backend(backend)
                        table._group_cache.clear()
                        got_distinct = table.group_distinct(by, of, mask=mask)
                        got_count = table.group_distinct_count(by, of, mask=mask)
                        assert list(got_distinct) == list(distinct_ref)
                        assert got_distinct == distinct_ref
                        _assert_bit_identical(
                            f"{label}/count/{by}/{of}/{backend}", count_ref, got_count
                        )


@pytest.mark.parametrize("seed", SEEDS)
def test_index_builders_agree(seed):
    """The numpy and python GroupIndex builders produce identical indexes."""
    if not kernels.numpy_available():
        pytest.skip("numpy not importable")
    for label, table in _adversarial_tables(seed):
        for by in _GROUPINGS:
            kernels.set_backend(kernels.BACKEND_PYTHON)
            python_index = kernels.build_group_index(table, by)
            kernels.set_backend(kernels.BACKEND_NUMPY)
            numpy_index = kernels.build_group_index(table, by)
            assert python_index.gids == numpy_index.gids, f"{label}/{by}"
            assert list(python_index.group_keys) == list(numpy_index.group_keys), (
                f"{label}/{by}"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_totals_and_distinct_parity(seed):
    """Whole-table totals and distincts are bit-identical across backends."""
    for label, table in _adversarial_tables(seed):
        for name, _typecode in NUMERIC_COLUMNS:
            reference = kernels.reference_total(table, name)
            for backend in _backends():
                kernels.set_backend(backend)
                got = table.total(name)
                assert type(got) is type(reference), f"{label}/{name}/{backend}"
                assert _float_bits(got) == _float_bits(reference), (
                    f"{label}/{name}/{backend}"
                )
        for name in CATEGORICAL_COLUMNS + ("subscriber_id", "bytes_down"):
            reference = kernels.reference_distinct(table, name)
            for backend in _backends():
                kernels.set_backend(backend)
                assert table.distinct(name) == reference, f"{label}/{name}/{backend}"


def _digest(table: FlowTable) -> str:
    stream = io.BytesIO()
    dump_table(table, stream)
    return hashlib.sha256(stream.getvalue()).hexdigest()


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_group_index_caching_changes_no_output_and_no_digest(seed):
    """Warm-cache reruns return identical results; the table bytes never move."""
    for label, table in _adversarial_tables(seed):
        before = _digest(table)
        for backend in _backends():
            kernels.set_backend(backend)
            table._group_cache.clear()
            cold_sums = table.group_sums(("provider_key", "timestamp"), ("bytes_down",))
            cold_count = table.group_distinct_count(("provider_key",), "subscriber_id")
            assert table.group_index(("provider_key", "timestamp")) is table.group_index(
                ("provider_key", "timestamp")
            ), "cache must serve the same index object while unmutated"
            warm_sums = table.group_sums(("provider_key", "timestamp"), ("bytes_down",))
            warm_count = table.group_distinct_count(("provider_key",), "subscriber_id")
            _assert_bit_identical(f"{label}/{backend}/warm-sums", cold_sums, warm_sums)
            _assert_bit_identical(f"{label}/{backend}/warm-count", cold_count, warm_count)
        assert _digest(table) == before, f"{label}: aggregations mutated the table"


def _mutators():
    def via_extend(table, rng):
        table.extend([_random_flow(rng, hours=4, subscribers=6)])

    def via_append(table, rng):
        table.append(_random_flow(rng, hours=4, subscribers=6))

    def via_append_columns(table, rng):
        _overflow_rows(table, rng, 3)

    def via_extend_table(table, rng):
        other = FlowTable.from_records(
            _random_flow(rng, hours=4, subscribers=6) for _ in range(5)
        )
        table.extend_table(other)

    def via_truncate(table, rng):
        table.truncate(len(table) - 1)

    def via_assign_numeric(table, rng):
        table.assign_numeric("bytes_down", [1.0] * len(table))

    return [
        ("extend", via_extend),
        ("append", via_append),
        ("append_columns", via_append_columns),
        ("extend_table", via_extend_table),
        ("truncate", via_truncate),
        ("assign_numeric", via_assign_numeric),
    ]


@pytest.mark.parametrize("mutator_name,mutate", _mutators())
def test_group_index_invalidation_bug_trap(mutator_name, mutate):
    """Every mutating primitive makes a cached GroupIndex unusable.

    The cache is keyed on the table's mutation counter: after any mutation
    the next aggregation must rebuild and match a fresh-table recompute, on
    every backend.
    """
    by = ("provider_key", "timestamp")
    for backend in _backends():
        kernels.set_backend(backend)
        rng = random.Random(17)
        table = FlowTable.from_records(
            _random_flow(rng, hours=5, subscribers=10) for _ in range(50)
        )
        stale = table.group_index(by)
        assert table.group_index(by) is stale, "unmutated cache must hit"
        mutate(table, rng)
        rebuilt = table.group_index(by)
        assert rebuilt is not stale, f"{mutator_name}: stale index reused"
        assert rebuilt.version == table._version
        fresh = FlowTable.from_records(table.to_records())
        _assert_bit_identical(
            f"{mutator_name}/{backend}",
            fresh.group_sums(by, ("bytes_down", "bytes_up")),
            table.group_sums(by, ("bytes_down", "bytes_up")),
        )
        assert table.group_distinct_count(by, "subscriber_id") == (
            fresh.group_distinct_count(by, "subscriber_id")
        )


def test_pool_growth_does_not_invalidate_but_pickle_drops_cache():
    """encode_value touches no rows (cache stays); pickles start cold."""
    rng = random.Random(23)
    table = FlowTable.from_records(
        _random_flow(rng, hours=5, subscribers=10) for _ in range(40)
    )
    by = ("provider_key",)
    index = table.group_index(by)
    table.encode_value("provider_key", "never-seen-provider")
    assert table.group_index(by) is index, "pool growth alone must not invalidate"
    clone = pickle.loads(pickle.dumps(table))
    assert clone._group_cache == {}, "pickled tables must not carry cached indexes"
    assert clone.group_sums(by, ("bytes_down",)) == table.group_sums(by, ("bytes_down",))


def test_int64_safe_limit_constants_agree():
    if not kernels.numpy_available():
        pytest.skip("numpy not importable")
    from repro.flows import kernels_np

    assert kernels.INT64_SAFE_LIMIT == kernels_np.INT64_SAFE_LIMIT


def test_env_var_selects_backend_and_rejects_garbage(monkeypatch):
    monkeypatch.setenv(kernels.KERNELS_ENV_VAR, "python")
    assert kernels.active_backend() == kernels.BACKEND_PYTHON
    monkeypatch.setenv(kernels.KERNELS_ENV_VAR, "fortran")
    with pytest.raises(ValueError):
        kernels.active_backend()
    monkeypatch.delenv(kernels.KERNELS_ENV_VAR)
    if kernels.numpy_available():
        monkeypatch.setenv(kernels.KERNELS_ENV_VAR, "numpy")
        assert kernels.active_backend() == kernels.BACKEND_NUMPY


# -- numpy-absent environments ----------------------------------------------------

#: Runs the tier-1-shaped analysis path and prints a canonical JSON summary.
#: ``--block-numpy`` poisons the numpy import before repro is imported, so
#: the kernels must auto-detect the pure-python backend.  Float repr is exact
#: for doubles, so equal stdout means bit-equal analysis results.
_SUBPROCESS_SCRIPT = r"""
import json, sys

if "--block-numpy" in sys.argv:
    sys.modules["numpy"] = None

from datetime import datetime, timedelta
import random

from repro.core.disruption import GROUP_ALL, GROUP_EU, GROUP_US_EAST, outage_impact
from repro.core.traffic import ScannerExclusion
from repro.flows import kernels
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import make_flow

expected = "python" if "--block-numpy" in sys.argv else kernels.active_backend()
if "--block-numpy" in sys.argv:
    assert not kernels.numpy_available(), "numpy import was not blocked"
assert kernels.active_backend() == expected

rng = random.Random(4)
records = [
    make_flow(
        timestamp=datetime(2021, 12, 5) + timedelta(hours=rng.randrange(72)),
        subscriber_id=rng.randrange(40),
        subscriber_prefix="p0",
        ip_version=4,
        provider_key=rng.choice(("amazon", "google")),
        server_ip="10.0.0.%d" % rng.randrange(1, 30),
        server_continent=rng.choice(("EU", "NA")),
        server_region=rng.choice(("us-east-1", "eu-west-1")),
        transport="tcp",
        port=8883,
        bytes_down=rng.uniform(10, 1e6),
        bytes_up=rng.uniform(1, 1e4),
    )
    for _ in range(400)
]
table = FlowTable.from_records(records)
exclusion = ScannerExclusion(table, {"10.0.0.%d" % n for n in range(1, 30)})
report = outage_impact(
    table,
    "amazon",
    (datetime(2021, 12, 7, 12), datetime(2021, 12, 7, 15)),
    (datetime(2021, 12, 5), datetime(2021, 12, 7)),
    sampling_ratio=4,
)
summary = {
    "contacts": sorted(exclusion.contacts_per_line().items()),
    "scanners": sorted(exclusion.scanner_lines(threshold=5)),
    "traffic": {
        group: [[str(when), value] for when, value in report.traffic_series[group].items()]
        for group in (GROUP_ALL, GROUP_US_EAST, GROUP_EU)
    },
    "lines": {
        group: [[str(when), value] for when, value in report.line_series[group].items()]
        for group in (GROUP_ALL, GROUP_US_EAST, GROUP_EU)
    },
    "min_traffic": report.previous_week_min_traffic,
    "volume": table.total("bytes_down"),
    "footprint": sorted(
        (key, len(ips))
        for key, ips in table.group_distinct(("provider_key",), "server_ip").items()
    ),
}
print(json.dumps(summary, sort_keys=True))
"""


def _run_analysis_subprocess(tmp_path, *args: str) -> str:
    script = tmp_path / "analysis_probe.py"
    script.write_text(_SUBPROCESS_SCRIPT)
    src = str(Path(__file__).resolve().parents[1] / "src")
    result = subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_numpy_absent_subprocess(tmp_path):
    """Blocking numpy leaves the analysis path working and byte-identical."""
    blocked = _run_analysis_subprocess(tmp_path, "--block-numpy")
    unblocked = _run_analysis_subprocess(tmp_path)
    assert json.loads(blocked)  # sanity: non-empty analysis output
    assert blocked == unblocked
