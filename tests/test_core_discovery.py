"""Tests for multi-source discovery and the DiscoveryResult container."""

from datetime import date

import pytest

from repro.core.discovery import (
    SOURCE_ACTIVE_DNS,
    SOURCE_PASSIVE_DNS,
    SOURCE_TLS,
    BackendDiscovery,
    DiscoveredIP,
    DiscoveryResult,
)
from repro.core.patterns import PatternSet
from repro.dns.passive_db import PassiveDnsDatabase


def test_discovered_ip_merge_rules():
    a = DiscoveredIP("10.0.0.1", "amazon", {SOURCE_TLS}, {"a.iot.eu-west-1.amazonaws.com"})
    b = DiscoveredIP("10.0.0.1", "amazon", {SOURCE_PASSIVE_DNS}, {"b.iot.eu-west-1.amazonaws.com"})
    a.merge(b)
    assert a.sources == {SOURCE_TLS, SOURCE_PASSIVE_DNS}
    assert len(a.domains) == 2
    with pytest.raises(ValueError):
        a.merge(DiscoveredIP("10.0.0.2", "amazon"))


def test_result_add_merges_duplicates():
    result = DiscoveryResult()
    result.add(DiscoveredIP("10.0.0.1", "amazon", {SOURCE_TLS}))
    result.add(DiscoveredIP("10.0.0.1", "amazon", {SOURCE_ACTIVE_DNS}))
    assert result.total_count() == 1
    record = result.records("amazon")[0]
    assert record.sources == {SOURCE_TLS, SOURCE_ACTIVE_DNS}


def test_result_family_views_and_provider_of():
    result = DiscoveryResult()
    result.add(DiscoveredIP("10.0.0.1", "amazon"))
    result.add(DiscoveredIP("fd00::1", "amazon"))
    result.add(DiscoveredIP("10.0.0.2", "google"))
    assert result.ipv4_ips("amazon") == {"10.0.0.1"}
    assert result.ipv6_ips("amazon") == {"fd00::1"}
    assert result.ips() == {"10.0.0.1", "fd00::1", "10.0.0.2"}
    assert result.provider_of("10.0.0.2") == "google"
    assert result.provider_of("10.9.9.9") is None
    assert result.providers() == ["amazon", "google"]


def test_result_merge_restrict_copy():
    a = DiscoveryResult()
    a.add(DiscoveredIP("10.0.0.1", "amazon", {SOURCE_TLS}))
    b = DiscoveryResult()
    b.add(DiscoveredIP("10.0.0.2", "google", {SOURCE_PASSIVE_DNS}))
    merged = a.copy().merge(b)
    assert merged.total_count() == 2
    assert a.total_count() == 1  # copy does not mutate the original
    restricted = merged.restrict_to({"10.0.0.2"})
    assert restricted.ips() == {"10.0.0.2"}


def test_discover_from_passive_dns_uses_patterns_and_time_range():
    db = PassiveDnsDatabase()
    db.add_observation("tenant.iot.eu-west-1.amazonaws.com", "10.0.0.1", date(2022, 2, 1), date(2022, 3, 10))
    db.add_observation("old.iot.eu-west-1.amazonaws.com", "10.0.0.2", date(2020, 1, 1), date(2020, 6, 1))
    db.add_observation("www.unrelated.example", "10.0.0.3", date(2022, 2, 1), date(2022, 3, 1))
    discovery = BackendDiscovery(PatternSet.for_providers())
    result = discovery.discover_from_passive_dns(db, since=date(2022, 2, 28), until=date(2022, 3, 7))
    assert result.ips("amazon") == {"10.0.0.1"}
    assert "10.0.0.3" not in result.ips()
    all_time = discovery.discover_from_passive_dns(db)
    assert all_time.ips("amazon") == {"10.0.0.1", "10.0.0.2"}


def test_discover_from_censys_matches_wildcard_certificates(small_world):
    from repro.core.providers import PROVIDERS

    discovery = BackendDiscovery()
    snapshot = small_world.censys.snapshot(small_world.config.study_period.start)
    result = discovery.discover_from_censys(snapshot)
    # Only providers, never unrelated web hosting.
    known_keys = {spec.key for spec in PROVIDERS}
    assert set(result.providers()).issubset(known_keys)
    assert result.total_count() > 0


def test_combine_unions_sources(small_world):
    discovery = BackendDiscovery()
    period = small_world.config.study_period
    passive = discovery.discover_from_passive_dns(small_world.passive_dns, period.start, period.end)
    active = discovery.discover_from_active_dns(
        small_world.authoritative, small_world.vantage_points, sorted(passive.domains())
    )
    combined = discovery.combine([passive, active])
    assert combined.total_count() >= max(passive.total_count(), active.total_count())
    assert combined.ips() == passive.ips() | active.ips()
