"""Tests for source attribution (Figure 3) and stability analysis (Figure 4)."""

from datetime import date

from repro.core.discovery import (
    SOURCE_ACTIVE_DNS,
    SOURCE_IPV6_SCAN,
    SOURCE_PASSIVE_DNS,
    SOURCE_TLS,
    DiscoveredIP,
    DiscoveryResult,
)
from repro.core.source_attribution import (
    CATEGORY_ACTIVE_DNS,
    CATEGORY_MULTIPLE,
    CATEGORY_PASSIVE_DNS,
    CATEGORY_SCAN,
    contribution_table,
    source_breakdown,
)
from repro.core.stability import compare_days, max_churn_by_provider, stability_analysis


def _result(day, entries):
    result = DiscoveryResult(day=day)
    for ip, sources in entries:
        result.add(DiscoveredIP(ip, "amazon", set(sources)))
    return result


def test_source_breakdown_categories():
    result = _result(
        date(2022, 2, 28),
        [
            ("10.0.0.1", {SOURCE_TLS}),
            ("10.0.0.2", {SOURCE_PASSIVE_DNS}),
            ("10.0.0.3", {SOURCE_ACTIVE_DNS}),
            ("10.0.0.4", {SOURCE_TLS, SOURCE_PASSIVE_DNS}),
            ("fd00::1", {SOURCE_IPV6_SCAN}),
        ],
    )
    v4 = source_breakdown(result, "amazon", 4)
    assert v4.total == 4
    assert v4.counts[CATEGORY_SCAN] == 1
    assert v4.counts[CATEGORY_PASSIVE_DNS] == 1
    assert v4.counts[CATEGORY_ACTIVE_DNS] == 1
    assert v4.counts[CATEGORY_MULTIPLE] == 1
    assert abs(sum(v4.fraction(c) for c in v4.counts) - 1.0) < 1e-9
    v6 = source_breakdown(result, "amazon", 6)
    assert v6.total == 1
    assert v6.counts[CATEGORY_SCAN] == 1


def test_contribution_table_lists_families():
    result = _result(date(2022, 2, 28), [("10.0.0.1", {SOURCE_TLS}), ("fd00::1", {SOURCE_IPV6_SCAN})])
    rows = contribution_table(result)
    families = {(r.provider_key, r.ip_version) for r in rows}
    assert ("amazon", 4) in families and ("amazon", 6) in families


def test_compare_days_counts():
    reference = _result(date(2022, 2, 28), [("10.0.0.1", {SOURCE_TLS}), ("10.0.0.2", {SOURCE_TLS})])
    current = _result(date(2022, 3, 1), [("10.0.0.2", {SOURCE_TLS}), ("10.0.0.3", {SOURCE_TLS})])
    comparison = compare_days("amazon", reference, current)
    assert comparison.in_both == 1
    assert comparison.only_current == 1
    assert comparison.only_reference == 1
    assert comparison.union_size == 3
    assert 0 < comparison.stable_fraction < 1
    assert abs(comparison.stable_fraction + comparison.churn_fraction - 1.0) < 1e-9


def test_stability_analysis_skips_missing_offsets():
    daily = {
        date(2022, 2, 28): _result(date(2022, 2, 28), [("10.0.0.1", {SOURCE_TLS})]),
        date(2022, 3, 1): _result(date(2022, 3, 1), [("10.0.0.1", {SOURCE_TLS})]),
    }
    comparisons = stability_analysis(daily, offsets=(1, 3, 6))
    assert len(comparisons) == 1
    assert comparisons[0].churn_fraction == 0.0


def test_stability_analysis_empty_input():
    assert stability_analysis({}) == []


def test_max_churn_by_provider():
    daily = {
        date(2022, 2, 28): _result(date(2022, 2, 28), [("10.0.0.1", {SOURCE_TLS})]),
        date(2022, 3, 1): _result(date(2022, 3, 1), [("10.0.0.2", {SOURCE_TLS})]),
    }
    comparisons = stability_analysis(daily, offsets=(1,))
    churn = max_churn_by_provider(comparisons)
    assert churn["amazon"] == 1.0


def test_identical_sets_are_fully_stable():
    result = _result(date(2022, 2, 28), [("10.0.0.1", {SOURCE_TLS})])
    comparison = compare_days("amazon", result, result)
    assert comparison.stable_fraction == 1.0
