"""Tests for the deterministic RNG registry."""

import random

from hypothesis import given, strategies as st

from repro.simulation.rng import RngRegistry, stable_hash


def test_same_seed_same_streams():
    a = RngRegistry(seed=1)
    b = RngRegistry(seed=1)
    assert [a.stream("x").random() for _ in range(5)] == [
        b.stream("x").random() for _ in range(5)
    ]


def test_different_names_give_independent_streams():
    registry = RngRegistry(seed=1)
    xs = [registry.stream("x").random() for _ in range(5)]
    ys = [registry.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_differ():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_stream_is_cached():
    registry = RngRegistry(seed=3)
    assert registry.stream("a") is registry.stream("a")


def test_fresh_stream_not_registered():
    registry = RngRegistry(seed=3)
    fresh = registry.fresh_stream("a")
    assert fresh is not registry.stream("a")
    # Fresh streams with the same name start from the same derived seed.
    assert registry.fresh_stream("a").random() == RngRegistry(3).fresh_stream("a").random()


def test_spawn_creates_independent_registry():
    registry = RngRegistry(seed=4)
    child = registry.spawn("child")
    assert isinstance(child, RngRegistry)
    assert child.stream("x").random() != registry.stream("x").random()


def test_choice_and_shuffled():
    registry = RngRegistry(seed=5)
    items = list(range(10))
    assert registry.choice("pick", items) in items
    shuffled = registry.shuffled("mix", items)
    assert sorted(shuffled) == items


def test_choice_empty_raises():
    registry = RngRegistry(seed=5)
    try:
        registry.choice("pick", [])
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


def test_stable_hash_is_deterministic_and_bounded():
    assert stable_hash("foo") == stable_hash("foo")
    assert stable_hash("foo") != stable_hash("bar")
    assert 0 <= stable_hash("foo", 100) < 100


@given(st.text(min_size=1, max_size=50), st.integers(min_value=1, max_value=10_000))
def test_stable_hash_respects_modulus(value, modulus):
    assert 0 <= stable_hash(value, modulus) < modulus
