"""Tests for the autonomous-system registry."""

import pytest

from repro.netmodel.asn import AsKind, AsRegistry, AutonomousSystem, distinct_asns


def test_create_assigns_unique_asns():
    registry = AsRegistry()
    first = registry.create("AS One", "Org A", AsKind.IOT_BACKEND)
    second = registry.create("AS Two", "Org A", AsKind.IOT_BACKEND)
    assert first.asn != second.asn
    assert len(registry) == 2


def test_lookup_by_asn_and_org():
    registry = AsRegistry()
    created = registry.create("Cloud AS", "Big Cloud", AsKind.CLOUD)
    assert registry.get(created.asn) == created
    assert registry.by_organization("Big Cloud") == [created]
    assert created.asn in registry


def test_conflicting_registration_rejected():
    registry = AsRegistry()
    registry.register(AutonomousSystem(65001, "a", "org", AsKind.OTHER))
    with pytest.raises(ValueError):
        registry.register(AutonomousSystem(65001, "b", "org", AsKind.OTHER))


def test_duplicate_identical_registration_is_noop():
    registry = AsRegistry()
    system = AutonomousSystem(65001, "a", "org", AsKind.OTHER)
    registry.register(system)
    registry.register(system)
    assert len(registry) == 1


def test_is_cloud_or_cdn():
    assert AutonomousSystem(1, "a", "o", AsKind.CLOUD).is_cloud_or_cdn()
    assert AutonomousSystem(2, "b", "o", AsKind.CDN).is_cloud_or_cdn()
    assert not AutonomousSystem(3, "c", "o", AsKind.IOT_BACKEND).is_cloud_or_cdn()


def test_all_sorted_and_organizations():
    registry = AsRegistry()
    registry.register(AutonomousSystem(65010, "x", "org-b", AsKind.ISP))
    registry.register(AutonomousSystem(65001, "y", "org-a", AsKind.ISP))
    assert [s.asn for s in registry.all()] == [65001, 65010]
    assert registry.organizations() == ["org-a", "org-b"]


def test_distinct_asns():
    systems = [
        AutonomousSystem(1, "a", "o", AsKind.OTHER),
        AutonomousSystem(1, "a", "o", AsKind.OTHER),
        AutonomousSystem(2, "b", "o", AsKind.OTHER),
    ]
    assert distinct_asns(systems) == 2
