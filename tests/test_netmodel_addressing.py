"""Tests for IP address and prefix helpers."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.addressing import (
    PrefixAllocator,
    count_slash24,
    count_slash56,
    ip_in_prefix,
    is_ipv6,
    parse_ip,
    parse_network,
    prefix_of,
    split_by_version,
    summarize_prefixes,
)


def test_parse_ip_idempotent():
    addr = parse_ip("10.0.0.1")
    assert parse_ip(addr) is addr
    assert parse_ip("::1").version == 6


def test_is_ipv6():
    assert is_ipv6("fd00::1")
    assert not is_ipv6("192.0.2.1")


def test_prefix_of():
    assert str(prefix_of("10.1.2.3", 24)) == "10.1.2.0/24"
    assert str(prefix_of("fd00::1234", 56)) == "fd00::/56"


def test_ip_in_prefix():
    assert ip_in_prefix("10.1.2.3", "10.1.0.0/16")
    assert not ip_in_prefix("10.2.0.1", "10.1.0.0/16")
    assert not ip_in_prefix("fd00::1", "10.0.0.0/8")


def test_count_slash24_and_slash56():
    ips = ["10.0.0.1", "10.0.0.200", "10.0.1.1", "fd00::1", "fd00:0:0:100::1"]
    assert count_slash24(ips) == 2
    assert count_slash56(ips) == 2


def test_split_by_version():
    v4, v6 = split_by_version(["10.0.0.1", "fd00::1"])
    assert len(v4) == 1 and v4[0].version == 4
    assert len(v6) == 1 and v6[0].version == 6


def test_summarize_prefixes_sorted_unique():
    prefixes = summarize_prefixes(["10.0.0.1", "10.0.0.2", "10.0.1.1"])
    assert [str(p) for p in prefixes] == ["10.0.0.0/24", "10.0.1.0/24"]


class TestPrefixAllocator:
    def test_allocates_disjoint_prefixes(self):
        allocator = PrefixAllocator("10.0.0.0/8")
        first = allocator.allocate_prefix(24)
        second = allocator.allocate_prefix(24)
        assert first != second
        assert not first.overlaps(second)

    def test_hosts_in_prefix(self):
        allocator = PrefixAllocator("10.0.0.0/8")
        prefix = allocator.allocate_prefix(24)
        hosts = allocator.hosts_in(prefix, 5)
        assert len(hosts) == 5
        assert all(h in prefix for h in hosts)

    def test_hosts_in_overflow_rejected(self):
        allocator = PrefixAllocator("10.0.0.0/8")
        prefix = allocator.allocate_prefix(30)
        with pytest.raises(ValueError):
            allocator.hosts_in(prefix, 10)

    def test_rejects_too_short_prefix(self):
        allocator = PrefixAllocator("10.0.0.0/16")
        with pytest.raises(ValueError):
            allocator.allocate_prefix(8)

    def test_ipv6_allocation(self):
        allocator = PrefixAllocator("fd00::/20")
        prefix = allocator.allocate_prefix(56)
        assert prefix.prefixlen == 56
        assert prefix.version == 6

    def test_exhaustion(self):
        allocator = PrefixAllocator("10.0.0.0/30")
        allocator.allocate_prefix(31)
        allocator.allocate_prefix(31)
        with pytest.raises(ValueError):
            allocator.allocate_prefix(31)


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=8, max_value=32))
def test_prefix_of_always_contains_ip(ip_int, length):
    ip = ipaddress.ip_address(ip_int)
    prefix = prefix_of(ip, length)
    assert ip in prefix
    assert prefix.prefixlen == length


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=60))
def test_count_slash24_bounded_by_ip_count(ip_ints):
    ips = [str(ipaddress.ip_address(i)) for i in ip_ints]
    assert 0 <= count_slash24(ips) <= len(set(ips))
