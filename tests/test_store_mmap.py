"""Digest- and analysis-parity of the zero-copy mmap store read path.

The contract under test: a warm context served through mmap-backed lazy
tables must be indistinguishable from one served through the eager decoder —
same ``dump_table`` bytes (hence same store digests), same analysis output,
same ``GroupIndex`` caching/invalidation behavior — on every kernel backend.
Corrupt payloads in mmap mode must fold into the store's corrupt-fallback
miss exactly like eager ones.
"""

import random
from datetime import date

import pytest

from repro.experiments.context import build_context
from repro.flows import kernels
from repro.flows.flowtable import (
    CATEGORICAL_COLUMNS,
    NUMERIC_COLUMNS,
    FlowTable,
    LazyColumn,
)
from repro.obs.metrics import MetricsRegistry, disable, enable, set_registry
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.store.artifacts import (
    STORE_MMAP_ENV_VAR,
    ArtifactStore,
    scenario_fingerprint,
)
from repro.store.codec import dumps_table, load_table_lazy, loads_table

from test_store_codec import random_records

PERIOD = StudyPeriod(date(2022, 3, 1), date(2022, 3, 3), name="mmap-test")

STAGE = "raw-export"


def _tiny(seed: int = 41, **overrides) -> ScenarioConfig:
    return ScenarioConfig.small(seed=seed).with_overrides(
        n_subscriber_lines=40, n_scanner_lines=1, **overrides
    )


def _backends():
    backends = [kernels.BACKEND_PYTHON]
    if kernels.numpy_available():
        backends.append(kernels.BACKEND_NUMPY)
    return backends


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    kernels.set_backend(None)


@pytest.fixture
def blob():
    return dumps_table(FlowTable.from_records(random_records(random.Random(55), 250)))


class TestAggregationParity:
    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_lazy_and_eager_tables_aggregate_identically(self, blob, backend):
        if backend == "numpy" and not kernels.numpy_available():
            pytest.skip("numpy not importable")
        kernels.set_backend(backend)
        eager = loads_table(blob)
        lazy = load_table_lazy(blob)
        for by in (("provider_key",), ("provider_key", "transport"), ("port",)):
            want = eager.group_sums(by, ("bytes_down", "bytes_up"))
            got = lazy.group_sums(by, ("bytes_down", "bytes_up"))
            assert got == want and list(got) == list(want)
            assert lazy.group_distinct(by, "server_ip") == eager.group_distinct(
                by, "server_ip"
            )
            assert lazy.group_distinct_count(by, "subscriber_id") == (
                eager.group_distinct_count(by, "subscriber_id")
            )
        mask = eager.mask_ip_version(4)
        assert lazy.group_sums(("provider_key",), ("bytes_down",), mask=mask) == (
            eager.group_sums(("provider_key",), ("bytes_down",), mask=mask)
        )
        assert lazy.distinct("server_ip") == eager.distinct("server_ip")
        assert lazy.distinct("port") == eager.distinct("port")
        assert lazy.total("bytes_down") == eager.total("bytes_down")
        # Aggregating never detaches the lazy columns from the map.
        assert isinstance(lazy.codes("provider_key"), LazyColumn)

    def test_group_index_caching_and_invalidation_match_eager(self, blob):
        eager = loads_table(blob)
        lazy = load_table_lazy(blob)
        index = lazy.group_index(("provider_key",))
        assert lazy.group_index(("provider_key",)) is index, "cache hit on lazy table"
        assert list(index.group_keys) == list(
            eager.group_index(("provider_key",)).group_keys
        )
        assert lazy._version == eager._version
        zeros = [0.0] * len(lazy)
        lazy.assign_numeric("bytes_down", zeros)
        eager.assign_numeric("bytes_down", zeros)
        assert lazy._version == eager._version, "mutation bumps versions identically"
        fresh = lazy.group_index(("provider_key",))
        assert fresh is not index and fresh.version == lazy._version


class TestCopyOnWrite:
    """Every mutating primitive detaches lazy columns and matches eager bytes."""

    def _pair(self, blob):
        return load_table_lazy(blob), loads_table(blob)

    def _assert_detached_and_equal(self, lazy, eager):
        for name in CATEGORICAL_COLUMNS:
            assert not isinstance(lazy.codes(name), LazyColumn)
        for name, _typecode in NUMERIC_COLUMNS:
            assert not isinstance(lazy.numeric(name), LazyColumn)
        assert dumps_table(lazy) == dumps_table(eager)

    def test_assign_numeric(self, blob):
        lazy, eager = self._pair(blob)
        values = [1.5] * len(eager)
        lazy.assign_numeric("bytes_up", values)
        eager.assign_numeric("bytes_up", values)
        self._assert_detached_and_equal(lazy, eager)

    def test_truncate(self, blob):
        lazy, eager = self._pair(blob)
        lazy.truncate(10)
        eager.truncate(10)
        self._assert_detached_and_equal(lazy, eager)

    def test_extend(self, blob):
        extra = random_records(random.Random(56), 20)
        lazy, eager = self._pair(blob)
        lazy.extend(extra)
        eager.extend(extra)
        self._assert_detached_and_equal(lazy, eager)

    def test_extend_table(self, blob):
        other = FlowTable.from_records(random_records(random.Random(57), 30))
        lazy, eager = self._pair(blob)
        lazy.extend_table(other)
        eager.extend_table(other)
        self._assert_detached_and_equal(lazy, eager)

    def test_filters_leave_lazy_source_attached(self, blob):
        lazy, eager = self._pair(blob)
        assert dumps_table(lazy.where_ip_version(4)) == dumps_table(
            eager.where_ip_version(4)
        )
        assert isinstance(lazy.codes("server_ip"), LazyColumn), (
            "read-only filters must not trigger copy-on-write"
        )

    def test_pickle_round_trip_materializes(self, blob):
        import pickle

        lazy, eager = self._pair(blob)
        clone = pickle.loads(pickle.dumps(lazy))
        assert not isinstance(clone.codes("provider_key"), LazyColumn)
        assert dumps_table(clone) == dumps_table(eager)


class TestWarmContextDigestParity:
    @pytest.mark.parametrize("backend", ("python", "numpy"))
    def test_warm_mmap_context_matches_eager(self, tmp_path, backend):
        """Cold build, then two warm reads (eager vs mmap): same bytes, same analysis."""
        if backend == "numpy" and not kernels.numpy_available():
            pytest.skip("numpy not importable")
        kernels.set_backend(backend)
        from repro.core.traffic import daily_active_lines, volume_timeseries

        config = _tiny(seed=61)
        root = tmp_path / "store"
        cold = build_context(config, use_cache=False, store=ArtifactStore(root))
        cold.clean_table()

        eager_context = build_context(
            config, use_cache=False, store=ArtifactStore(root, mmap_reads=False)
        )
        mmap_context = build_context(
            config, use_cache=False, store=ArtifactStore(root, mmap_reads=True)
        )
        eager_clean = eager_context.clean_table()
        mmap_clean = mmap_context.clean_table()
        assert isinstance(mmap_clean.codes("provider_key"), LazyColumn)
        assert dumps_table(mmap_clean) == dumps_table(eager_clean), "store digest parity"
        assert dumps_table(mmap_context.raw_table()) == dumps_table(
            eager_context.raw_table()
        )
        assert volume_timeseries(mmap_clean, mmap_context.anonymization) == (
            volume_timeseries(eager_clean, eager_context.anonymization)
        )
        assert daily_active_lines(mmap_clean) == daily_active_lines(eager_clean)


class TestStoreMmapMode:
    @pytest.fixture
    def table(self):
        return FlowTable.from_records(random_records(random.Random(62), 120))

    def test_mmap_reads_default_on_and_env_toggle(self, tmp_path, monkeypatch):
        assert ArtifactStore(tmp_path / "a").mmap_reads is True
        monkeypatch.setenv(STORE_MMAP_ENV_VAR, "0")
        assert ArtifactStore(tmp_path / "b").mmap_reads is False
        monkeypatch.setenv(STORE_MMAP_ENV_VAR, "1")
        assert ArtifactStore(tmp_path / "c").mmap_reads is True
        # The constructor argument wins over the environment.
        assert ArtifactStore(tmp_path / "d", mmap_reads=False).mmap_reads is False

    def test_get_table_returns_lazy_tables_in_mmap_mode(self, tmp_path, table):
        store = ArtifactStore(tmp_path / "store")
        store.put_table(_tiny(), PERIOD, STAGE, table)
        loaded = store.get_table(_tiny(), PERIOD, STAGE)
        assert isinstance(loaded.codes("provider_key"), LazyColumn)
        assert loaded.to_records() == table.to_records()

    def test_legacy_flat_layout_reads_via_mmap(self, tmp_path, table):
        store = ArtifactStore(tmp_path / "store")
        path = store.put_table(_tiny(), PERIOD, STAGE, table)
        digest = scenario_fingerprint(_tiny(), PERIOD, STAGE)
        path.rename(store._legacy_payload_path(digest))
        loaded = store.get_table(_tiny(), PERIOD, STAGE)
        assert loaded is not None
        assert loaded.to_records() == table.to_records()

    def _corrupt_counter(self, store, config):
        registry = MetricsRegistry()
        set_registry(registry)
        enable()
        try:
            result = store.get_table(config, PERIOD, STAGE)
        finally:
            disable()
            set_registry(MetricsRegistry())
        return result, registry.counter("store.corrupt_fallbacks")

    def test_zero_length_payload_is_a_corrupt_fallback(self, tmp_path, table):
        """mmap raises ValueError on empty maps; the store must absorb it."""
        config = _tiny()
        store = ArtifactStore(tmp_path / "store")
        path = store.put_table(config, PERIOD, STAGE, table)
        path.write_bytes(b"")
        result, fallbacks = self._corrupt_counter(store, config)
        assert result is None
        assert fallbacks == 1
        assert not path.exists(), "corrupt payload is discarded for a cold rebuild"

    def test_short_payload_is_a_corrupt_fallback(self, tmp_path, table):
        """A file shorter than its declared block offsets is a miss, not a crash."""
        config = _tiny()
        store = ArtifactStore(tmp_path / "store")
        path = store.put_table(config, PERIOD, STAGE, table)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        result, fallbacks = self._corrupt_counter(store, config)
        assert result is None
        assert fallbacks == 1
        assert not path.exists()

    def test_corrupt_fallback_triggers_cold_rebuild(self, tmp_path):
        """End to end: a zero-length mmap payload rebuilds through the pipeline."""
        config = _tiny(seed=63)
        root = tmp_path / "store"
        store = ArtifactStore(root)
        cold = build_context(config, use_cache=False, store=store)
        want = cold.raw_table().to_records()
        digest = scenario_fingerprint(config, config.study_period, STAGE)
        store._payload_path(digest).write_bytes(b"")
        rebuilt = build_context(config, use_cache=False, store=ArtifactStore(root))
        assert rebuilt.raw_table().to_records() == want

    def test_eager_mode_still_round_trips(self, tmp_path, table):
        store = ArtifactStore(tmp_path / "store", mmap_reads=False)
        store.put_table(_tiny(), PERIOD, STAGE, table)
        loaded = store.get_table(_tiny(), PERIOD, STAGE)
        assert not isinstance(loaded.codes("provider_key"), LazyColumn)
        assert loaded.to_records() == table.to_records()
