"""Tests for the HTTP protocol model."""

import pytest

from repro.protocols.http import (
    HttpRequest,
    HttpResponse,
    HttpServerBehaviour,
    probe_server,
)


def test_request_roundtrip():
    request = HttpRequest(method="GET", path="/status", host="iot.example", headers=(("X-Probe", "1"),))
    decoded = HttpRequest.decode(request.encode())
    assert decoded == request


def test_response_roundtrip_and_header_lookup():
    response = HttpResponse(200, "OK", (("Server", "gw"), ("Connection", "close")), body="hello")
    decoded = HttpResponse.decode(response.encode())
    assert decoded == response
    assert decoded.header("server") == "gw"
    assert decoded.header("missing") is None


def test_malformed_request_and_response_rejected():
    with pytest.raises(ValueError):
        HttpRequest.decode("NOT A REQUEST")
    with pytest.raises(ValueError):
        HttpResponse.decode("garbage\r\n\r\n")


def test_server_distinguishes_known_hosts():
    behaviour = HttpServerBehaviour(
        server_header="iot-gw", known_hosts=("tenant.iot.example",), status_for_known_host=401
    )
    known = behaviour.handle(HttpRequest(host="tenant.iot.example"))
    unknown = behaviour.handle(HttpRequest(host="other.example"))
    assert known.status_code == 401
    assert unknown.status_code == 404


def test_server_without_host_restriction():
    behaviour = HttpServerBehaviour(status_for_known_host=200)
    assert behaviour.handle(HttpRequest()).status_code == 200


def test_probe_server():
    result = probe_server(HttpServerBehaviour(server_header="iot-gateway"))
    assert result.spoke_http
    assert result.server_header == "iot-gateway"
