"""Tests for the Censys-like scanning service."""

from datetime import date

from repro.netmodel.geo import GeoDatabase, world_locations
from repro.netmodel.topology import BackendServer, ServiceEndpoint
from repro.scan.censys import CensysService, CensysSnapshot, CensysHostRecord
from repro.scan.certificates import make_certificate
from repro.scan.tls import TlsServerConfig

DAY = date(2022, 2, 28)


def _server(ip: str, domain: str, require_sni: bool = False, require_client_cert: bool = False):
    cert = make_certificate([domain], not_before=date(2021, 6, 1), not_after=date(2023, 6, 1))
    tls = TlsServerConfig(
        default_certificate=None if require_sni else cert,
        sni_certificates={domain: cert},
        require_sni=require_sni,
        require_client_certificate=require_client_cert,
    )
    return BackendServer(
        ip=ip,
        provider="acme",
        location=world_locations()[0],
        asn=65001,
        prefix="10.0.0.0/24",
        endpoints=(
            ServiceEndpoint("tcp", 443, "HTTPS", tls=tls),
            ServiceEndpoint("tcp", 8883, "MQTTS", tls=tls),
        ),
        domains=(domain,),
    )


def _service(servers):
    geo = GeoDatabase()
    return CensysService(geo_database=geo, host_source=lambda day: servers)


def test_snapshot_contains_certificates_of_plain_servers():
    service = _service([_server("10.0.0.1", "gw.acme-iot.example")])
    snapshot = service.snapshot(DAY)
    record = snapshot.get("10.0.0.1")
    assert record is not None
    assert ("tcp", 443) in record.open_ports
    assert any("gw.acme-iot.example" in c.all_dns_names() for c in record.certificates)


def test_sni_required_server_yields_no_certificates():
    service = _service([_server("10.0.0.2", "gw.acme-iot.example", require_sni=True)])
    record = service.snapshot(DAY).get("10.0.0.2")
    assert record is not None
    assert record.certificates == ()


def test_client_cert_required_server_yields_no_certificates():
    service = _service([_server("10.0.0.3", "gw.acme-iot.example", require_client_cert=True)])
    record = service.snapshot(DAY).get("10.0.0.3")
    assert record is not None
    assert record.certificates == ()


def test_snapshot_is_cached_and_ipv6_skipped():
    servers = [_server("10.0.0.1", "a.example"), _server("fd00::1", "b.example")]
    service = _service(servers)
    snapshot = service.snapshot(DAY)
    assert service.snapshot(DAY) is snapshot
    assert snapshot.get("fd00::1") is None


def test_search_certificates_regex():
    service = _service([_server("10.0.0.1", "tenant.iot.acme.example")])
    snapshot = service.snapshot(DAY)
    matches = snapshot.search_certificates(r"\.iot\.acme\.example$")
    assert [m[0] for m in matches] == ["10.0.0.1"]
    assert snapshot.search_certificates(r"\.does-not-exist\.example$") == []


def test_search_name_string():
    service = _service([_server("10.0.0.1", "tenant.iot.acme.example")])
    snapshot = service.snapshot(DAY)
    assert snapshot.search_name_string("*.iot.acme.example")
    assert not snapshot.search_name_string("*.other.example")


def test_banners_collected():
    service = _service([_server("10.0.0.1", "gw.example")])
    record = service.snapshot(DAY).get("10.0.0.1")
    protocols = {banner.protocol for banner in record.banners}
    assert "HTTPS" in protocols
    assert "MQTTS" in protocols
