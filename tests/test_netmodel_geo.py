"""Tests for the geolocation substrate."""

import pytest

from repro.netmodel.geo import (
    CONTINENT_EUROPE,
    CONTINENT_NORTH_AMERICA,
    GeoDatabase,
    Location,
    LocationVote,
    majority_vote,
    world_locations,
)


def test_world_locations_cover_main_continents():
    locations = world_locations()
    continents = {loc.continent for loc in locations}
    assert {"EU", "NA", "AS"}.issubset(continents)
    assert len(locations) >= 25
    # Region codes are unique.
    assert len({loc.region_code for loc in locations}) == len(locations)


def test_invalid_continent_rejected():
    with pytest.raises(ValueError):
        Location("Nowhere", "xxx", "XX", "XX", "xx-nowhere-1")


def test_geo_database_prefix_lookup():
    db = GeoDatabase()
    frankfurt = world_locations()[0]
    db.register_prefix("10.1.0.0/16", frankfurt)
    assert db.lookup_ip("10.1.2.3") == frankfurt
    assert db.lookup_ip("10.2.0.1") is None


def test_geo_database_most_specific_prefix_wins():
    db = GeoDatabase()
    locations = world_locations()
    db.register_prefix("10.0.0.0/8", locations[0])
    db.register_prefix("10.1.0.0/16", locations[1])
    assert db.lookup_ip("10.1.2.3") == locations[1]
    assert db.lookup_ip("10.2.0.1") == locations[0]


def test_geo_database_ip_override():
    db = GeoDatabase()
    locations = world_locations()
    db.register_prefix("10.0.0.0/8", locations[0])
    db.register_ip("10.0.0.99", locations[2])
    assert db.lookup_ip("10.0.0.99") == locations[2]


def test_region_and_airport_lookup():
    db = GeoDatabase()
    for location in world_locations():
        db.register_location(location)
    assert db.lookup_region_code("eu-central-1").city == "Frankfurt"
    assert db.lookup_airport_code("FRA").city == "Frankfurt"
    assert db.lookup_region_code("does-not-exist") is None


def test_majority_vote_picks_most_common():
    locations = world_locations()
    votes = [
        LocationVote("a", locations[0]),
        LocationVote("b", locations[0]),
        LocationVote("c", locations[1]),
    ]
    assert majority_vote(votes) == locations[0]


def test_majority_vote_empty_and_tie():
    locations = world_locations()
    assert majority_vote([]) is None
    tie = [LocationVote("a", locations[0]), LocationVote("b", locations[1])]
    # Deterministic result on ties.
    assert majority_vote(tie) == majority_vote(list(tie))
