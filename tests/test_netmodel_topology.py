"""Tests for backend servers and provider deployments."""

import pytest

from repro.netmodel.geo import world_locations
from repro.netmodel.topology import BackendServer, ProviderDeployment, ServiceEndpoint


def make_server(ip: str, provider: str = "acme", location_index: int = 0, **kwargs) -> BackendServer:
    location = world_locations()[location_index]
    return BackendServer(
        ip=ip,
        provider=provider,
        location=location,
        asn=65001,
        prefix="10.0.0.0/24",
        endpoints=(ServiceEndpoint("tcp", 8883, "MQTTS"), ServiceEndpoint("tcp", 443, "HTTPS")),
        domains=(f"dev.{provider}.example",),
        **kwargs,
    )


def test_server_ip_normalisation_and_version():
    server = make_server("10.0.0.1")
    assert server.ip == "10.0.0.1"
    assert server.ip_version == 4
    assert not server.is_ipv6
    # IPv6 textual form is canonicalised.
    v6 = make_server("fd00:0:0:0::1")
    assert v6.ip == "fd00::1"
    assert v6.is_ipv6


def test_endpoint_lookup_and_open_ports():
    server = make_server("10.0.0.1")
    assert server.endpoint("tcp", 8883).protocol == "MQTTS"
    assert server.endpoint("udp", 5683) is None
    assert ("tcp", 443) in server.open_ports()
    assert server.tls_endpoints() == []


def test_deployment_rejects_foreign_server():
    deployment = ProviderDeployment(provider="acme")
    with pytest.raises(ValueError):
        deployment.add_server(make_server("10.0.0.1", provider="other"))


def test_deployment_aggregates():
    deployment = ProviderDeployment(provider="acme")
    deployment.add_server(make_server("10.0.0.1", location_index=0))
    deployment.add_server(make_server("10.0.0.2", location_index=0))
    deployment.add_server(make_server("10.0.1.1", location_index=10))
    deployment.add_server(make_server("fd00::1", location_index=10))
    assert len(deployment.ipv4_servers()) == 3
    assert len(deployment.ipv6_servers()) == 1
    assert deployment.slash24_count() == 2
    assert deployment.slash56_count() == 1
    assert len(deployment.locations()) == 2
    assert len(deployment.countries()) == 2
    assert deployment.asns() == [65001]
    assert deployment.prefixes() == ["10.0.0.0/24"]
    assert ("tcp", 8883) in deployment.ports()
    assert not deployment.uses_anycast()
    assert deployment.cloud_hosts() == []


def test_deployment_region_and_continent_views():
    deployment = ProviderDeployment(provider="acme")
    eu = make_server("10.0.0.1", location_index=0)
    na = make_server("10.0.1.1", location_index=10)
    deployment.add_server(eu)
    deployment.add_server(na)
    assert deployment.servers_in_continent(eu.location.continent) == [eu]
    assert deployment.servers_in_region(na.location.region_code) == [na]


def test_server_by_ip_lookup():
    deployment = ProviderDeployment(provider="acme")
    server = make_server("10.0.0.1")
    deployment.add_server(server)
    assert deployment.server_by_ip()["10.0.0.1"] is server
