"""Tests for the content-addressed artifact store and its warm-start wiring."""

import random
import threading
from concurrent.futures import ThreadPoolExecutor
from datetime import date

import pytest

from repro.experiments.context import build_context
from repro.flows.flowtable import FlowTable
from repro.flows.workload import WorkloadGenerator
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.store.artifacts import (
    STAGE_RAW_EXPORT,
    ArtifactStore,
    clean_stage,
    config_digest,
    generated_stage,
    scenario_fingerprint,
)

from test_store_codec import random_records

PERIOD = StudyPeriod(date(2022, 3, 1), date(2022, 3, 3), name="store-test")


def _tiny(seed: int = 21, **overrides) -> ScenarioConfig:
    return ScenarioConfig.small(seed=seed).with_overrides(
        n_subscriber_lines=40, n_scanner_lines=1, **overrides
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def table():
    return FlowTable.from_records(random_records(random.Random(1), 120))


class TestFingerprint:
    def test_distinguishes_every_config_field(self):
        base = _tiny()
        for overrides in ({"seed": 99}, {"sampling_ratio": 64}, {"volume_sigma": 0.5}):
            changed = base.with_overrides(**overrides)
            assert scenario_fingerprint(base, PERIOD, "s") != scenario_fingerprint(
                changed, PERIOD, "s"
            )

    def test_distinguishes_stage_and_period(self):
        base = _tiny()
        other_period = StudyPeriod(date(2022, 3, 1), date(2022, 3, 4))
        assert scenario_fingerprint(base, PERIOD, "a") != scenario_fingerprint(base, PERIOD, "b")
        assert scenario_fingerprint(base, PERIOD, "a") != scenario_fingerprint(
            base, other_period, "a"
        )

    def test_period_name_does_not_matter(self):
        """Flows depend only on the covered days, so renamed periods share artifacts."""
        renamed = StudyPeriod(PERIOD.start, PERIOD.end, name="something-else")
        assert scenario_fingerprint(_tiny(), PERIOD, "s") == scenario_fingerprint(
            _tiny(), renamed, "s"
        )

    def test_config_digest_is_stable(self):
        assert config_digest(_tiny()) == config_digest(_tiny())
        assert config_digest(_tiny()) != config_digest(_tiny(seed=22))


class TestStore:
    def test_miss_returns_none(self, store):
        assert store.get_table(_tiny(), PERIOD, "missing") is None

    def test_put_get_round_trip(self, store, table):
        store.put_table(_tiny(), PERIOD, "stage", table)
        loaded = store.get_table(_tiny(), PERIOD, "stage")
        assert loaded is not None
        assert loaded.to_records() == table.to_records()

    def test_entries_and_total_bytes(self, store, table):
        config = _tiny()
        store.put_table(config, PERIOD, "a", table)
        store.put_table(config, PERIOD, "b", table)
        entries = store.entries()
        assert {entry.stage for entry in entries} == {"a", "b"}
        assert all(entry.rows == len(table) for entry in entries)
        assert store.total_bytes() == sum(entry.payload_bytes for entry in entries)
        assert all(entry.config == repr(config) for entry in entries)

    def test_corrupt_payload_is_a_miss_and_removed(self, store, table):
        config = _tiny()
        path = store.put_table(config, PERIOD, "stage", table)
        path.write_bytes(b"corrupted beyond recognition")
        assert store.get_table(config, PERIOD, "stage") is None
        assert not path.exists()
        assert store.entries() == []

    def test_truncated_payload_is_a_miss(self, store, table):
        config = _tiny()
        path = store.put_table(config, PERIOD, "stage", table)
        path.write_bytes(path.read_bytes()[:100])
        assert store.get_table(config, PERIOD, "stage") is None

    def test_prune_all(self, store, table):
        store.put_table(_tiny(), PERIOD, "a", table)
        store.put_table(_tiny(), PERIOD, "b", table)
        removed, freed = store.prune()
        assert removed == 2
        assert freed > 0
        assert store.entries() == []
        assert list(store.root.iterdir()) == []

    def test_prune_respects_age_cutoff(self, store, table):
        store.put_table(_tiny(), PERIOD, "fresh", table)
        removed, _freed = store.prune(older_than_seconds=3600.0)
        assert removed == 0
        assert len(store.entries()) == 1


class TestShardedLayout:
    def test_payloads_live_in_two_level_fanout(self, store, table):
        path = store.put_table(_tiny(), PERIOD, "stage", table)
        digest = scenario_fingerprint(_tiny(), PERIOD, "stage")
        assert path == store.root / digest[:2] / f"{digest[2:]}.rft"
        assert path.exists()
        sidecar = store._meta_path(digest)
        assert sidecar.parent == path.parent and sidecar.exists()

    def test_legacy_flat_layout_reads_transparently(self, store, table):
        """Artifacts written by the pre-sharding store must stay readable."""
        config = _tiny()
        path = store.put_table(config, PERIOD, "stage", table)
        digest = path.parent.name + path.stem
        # Demote the artifact to the legacy flat layout by hand.
        flat_payload = store.root / f"{digest}.rft"
        flat_meta = store.root / f"{digest}.json"
        path.rename(flat_payload)
        store._meta_path(digest).rename(flat_meta)
        path.parent.rmdir()
        loaded = store.get_table(config, PERIOD, "stage")
        assert loaded is not None
        assert loaded.to_records() == table.to_records()
        assert digest in {entry.digest for entry in store.entries()}

    def test_rewrite_migrates_legacy_artifacts_to_shards(self, store, table):
        config = _tiny()
        path = store.put_table(config, PERIOD, "stage", table)
        digest = path.parent.name + path.stem
        flat_payload = store.root / f"{digest}.rft"
        flat_meta = store.root / f"{digest}.json"
        path.rename(flat_payload)
        store._meta_path(digest).rename(flat_meta)
        path.parent.rmdir()
        # Re-putting the same artifact adopts the sharded layout and retires
        # the flat copy, so the store never holds two copies of one digest.
        store.put_table(config, PERIOD, "stage", table)
        assert path.exists() and store._meta_path(digest).exists()
        assert not flat_payload.exists() and not flat_meta.exists()
        assert len(store.entries()) == 1

    def test_prune_cleans_both_layouts_and_empty_shards(self, store, table):
        config = _tiny()
        path = store.put_table(config, PERIOD, "sharded", table)
        digest = path.parent.name + path.stem
        (store.root / f"{digest}.rft").write_bytes(path.read_bytes())
        removed, _freed = store.prune()
        assert removed >= 1
        assert list(store.root.iterdir()) == [], "prune must leave no shard dirs behind"

    def test_concurrent_writers_of_one_digest_all_succeed(self, store, table):
        """Racing writers must never corrupt the artifact (atomic os.replace)."""
        config = _tiny()
        n_writers = 8
        barrier = threading.Barrier(n_writers)

        def write():
            barrier.wait()
            return store.put_table(config, PERIOD, "raced", table)

        with ThreadPoolExecutor(max_workers=n_writers) as pool:
            paths = [future.result() for future in [pool.submit(write) for _ in range(n_writers)]]
        assert len({str(p) for p in paths}) == 1, "all writers converge on one payload path"
        loaded = store.get_table(config, PERIOD, "raced")
        assert loaded is not None
        assert loaded.to_records() == table.to_records()
        assert len(store.entries()) == 1
        # No temp files may survive the race.
        strays = [p.name for p in store.root.rglob("*") if ".tmp-" in p.name]
        assert strays == [], strays


class TestWarmStart:
    def test_world_flows_table_warm_starts(self, store, monkeypatch):
        config = _tiny(seed=31)
        cold = build_context(config, use_cache=False, store=store)
        cold_records = cold.world.flows_table(PERIOD).to_records()

        # A warm world must never call the generator again.
        def boom(self, period, include_scanners=True, workers=None):
            raise AssertionError("generator ran despite a warm store")

        monkeypatch.setattr(WorkloadGenerator, "generate_period_table", boom)
        warm = build_context(config, use_cache=False, store=store)
        assert warm.world.flows_table(PERIOD).to_records() == cold_records

    def test_context_tables_warm_start_and_skip_discovery(self, store):
        config = _tiny(seed=32)
        cold = build_context(config, use_cache=False, store=store)
        cold_clean = cold.clean_table()
        cold_raw = cold.raw_table()

        warm = build_context(config, use_cache=False, store=store)
        assert warm.clean_table().to_records() == cold_clean.to_records()
        assert warm.raw_table().to_records() == cold_raw.to_records()
        # Everything came from disk: the discovery pipeline never ran.
        assert warm._result is None

    def test_store_stages_are_populated(self, store):
        config = _tiny(seed=33)
        context = build_context(config, use_cache=False, store=store)
        context.clean_table()
        stages = {entry.stage for entry in store.entries()}
        assert generated_stage(True) in stages
        assert STAGE_RAW_EXPORT in stages
        assert clean_stage(100) in stages

    def test_distinct_configs_do_not_alias(self, store):
        low = build_context(_tiny(seed=34), use_cache=False, store=store)
        high = build_context(
            _tiny(seed=34, sampling_ratio=32), use_cache=False, store=store
        )
        assert len(low.raw_table(PERIOD)) != len(high.raw_table(PERIOD)) or (
            low.raw_table(PERIOD).to_records() != high.raw_table(PERIOD).to_records()
        )
