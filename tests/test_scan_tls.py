"""Tests for the TLS handshake model (SNI and client-certificate behaviour)."""

from repro.scan.certificates import make_certificate
from repro.scan.tls import TlsServerConfig, perform_handshake


def _cert(name: str):
    return make_certificate([name])


def test_default_certificate_served_without_sni():
    config = TlsServerConfig(default_certificate=_cert("gw.example"))
    result = perform_handshake(config)
    assert result.success
    assert result.certificate.subject_common_name == "gw.example"


def test_sni_required_hides_certificate_from_ip_scans():
    config = TlsServerConfig(
        default_certificate=None,
        sni_certificates={"mqtt.googleapis.com": _cert("mqtt.googleapis.com")},
        require_sni=True,
    )
    blind = perform_handshake(config)
    assert not blind.success
    assert blind.failure_reason == "SNI required"
    with_sni = perform_handshake(config, server_name="mqtt.googleapis.com")
    assert with_sni.success


def test_unknown_sni_rejected():
    config = TlsServerConfig(
        sni_certificates={"a.example": _cert("a.example")}, require_sni=True
    )
    result = perform_handshake(config, server_name="b.example")
    assert not result.success
    assert result.failure_reason == "unknown server name"


def test_wildcard_sni_certificate_matches():
    config = TlsServerConfig(
        sni_certificates={"*.iot.example": make_certificate(["*.iot.example"])},
        require_sni=True,
    )
    result = perform_handshake(config, server_name="tenant.iot.example")
    assert result.success


def test_client_certificate_required_blocks_scanners():
    config = TlsServerConfig(
        default_certificate=_cert("mqtt.iot.example"), require_client_certificate=True
    )
    blocked = perform_handshake(config)
    assert not blocked.success
    assert blocked.failure_reason == "client certificate required"
    allowed = perform_handshake(config, offer_client_certificate=True)
    assert allowed.success


def test_no_certificate_configured():
    result = perform_handshake(TlsServerConfig())
    assert not result.success
    assert result.observed_certificate is None


def test_all_certificates_listing():
    default = _cert("default.example")
    sni = _cert("sni.example")
    config = TlsServerConfig(default_certificate=default, sni_certificates={"sni.example": sni})
    assert set(c.subject_common_name for c in config.all_certificates()) == {
        "default.example",
        "sni.example",
    }
