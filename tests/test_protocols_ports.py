"""Tests for the port registry and classification."""

from repro.protocols.ports import (
    IANA_PORT_SERVICES,
    STANDARD_IOT_PORTS,
    classify_port,
    describe_port,
    is_standard_iot_port,
    is_web_port,
    port_label,
)


def test_standard_iot_ports_classified():
    assert classify_port("tcp", 8883) == "iot-standard"
    assert classify_port("tcp", 1883) == "iot-standard"
    assert classify_port("udp", 5684) == "iot-standard"
    assert classify_port("tcp", 5671) == "iot-standard"


def test_web_ports_classified():
    assert classify_port("tcp", 443) == "web"
    assert classify_port("tcp", 80) == "web"
    assert is_web_port("TCP", 443)


def test_nonstandard_iot_ports_classified():
    assert classify_port("tcp", 1884) == "iot-nonstandard"
    assert classify_port("udp", 5682) == "iot-nonstandard"
    assert classify_port("tcp", 61616) == "iot-nonstandard"
    assert classify_port("tcp", 9123) == "iot-nonstandard"


def test_other_ports():
    assert classify_port("tcp", 22) == "other"
    assert classify_port("udp", 53) == "other"


def test_describe_known_and_unknown_ports():
    assert describe_port("tcp", 8883).service == "MQTTS"
    unknown = describe_port("tcp", 12345)
    assert unknown.service == "port-12345"


def test_port_labels():
    assert port_label("tcp", 8883) == "TCP/8883 (MQTTS)"
    assert port_label("udp", 5684) == "UDP/5684 (CoAPS)"
    assert port_label("udp", 30023) == "UDP/30023"


def test_standard_ports_are_registered():
    for transport, port in STANDARD_IOT_PORTS:
        assert is_standard_iot_port(transport, port)
        assert (transport, port) in IANA_PORT_SERVICES
