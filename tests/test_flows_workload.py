"""Tests for the workload generator and scanner traffic."""

from datetime import date, datetime

from repro.core.providers import PROVIDERS
from repro.flows.flowtable import FlowTable
from repro.flows.scanners import append_scanner_flows, generate_scanner_flows
from repro.flows.subscribers import SubscriberPopulation
from repro.flows.workload import WorkloadGenerator
from repro.simulation.clock import StudyPeriod
from repro.simulation.rng import RngRegistry


def _generator(world):
    return world.workload_generator()


def test_generate_hour_is_deterministic(small_world):
    generator_a = _generator(small_world)
    generator_b = _generator(small_world)
    when = datetime(2022, 2, 28, 20)
    flows_a = generator_a.generate_hour(when)
    flows_b = generator_b.generate_hour(when)
    assert len(flows_a) == len(flows_b)
    assert [f.server_ip for f in flows_a] == [f.server_ip for f in flows_b]


def test_flows_reference_known_servers_and_subscribers(small_world):
    generator = _generator(small_world)
    flows = generator.generate_day(date(2022, 2, 28), include_scanners=False)
    assert flows
    servers = small_world.servers_by_ip()
    line_ids = {line.line_id for line in small_world.population.lines}
    for flow in flows[:500]:
        assert flow.server_ip in servers
        assert flow.subscriber_id in line_ids
        assert flow.bytes_down >= 0 and flow.bytes_up >= 0
        assert flow.provider_key in {spec.key for spec in PROVIDERS}


def test_devices_only_contact_their_provider(small_world):
    generator = _generator(small_world)
    flows = generator.generate_day(date(2022, 2, 28), include_scanners=False)
    servers = small_world.servers_by_ip()
    for flow in flows[:500]:
        assert servers[flow.server_ip].provider == flow.provider_key


def test_flows_only_use_dedicated_servers(small_world):
    generator = _generator(small_world)
    flows = generator.generate_day(date(2022, 2, 28), include_scanners=False)
    servers = small_world.servers_by_ip()
    assert all(servers[f.server_ip].dedicated_iot for f in flows)


def test_prime_time_activity_higher_in_evening(small_world):
    generator = _generator(small_world)
    evening = generator.generate_hour(datetime(2022, 3, 2, 20))
    night = generator.generate_hour(datetime(2022, 3, 2, 3))
    evening_amazon = sum(1 for f in evening if f.provider_key == "amazon")
    night_amazon = sum(1 for f in night if f.provider_key == "amazon")
    assert evening_amazon > night_amazon


def test_generate_period_covers_all_days(small_world):
    generator = _generator(small_world)
    period = StudyPeriod(date(2022, 2, 28), date(2022, 3, 2))
    flows = generator.generate_period(period, include_scanners=False)
    days = {flow.timestamp.date() for flow in flows}
    assert days == set(period.days())


def test_columnar_period_matches_record_path(small_world):
    """The columnar generator reproduces the record path's flows exactly."""
    period = StudyPeriod(date(2022, 2, 28), date(2022, 3, 2))
    records = _generator(small_world).generate_period(period, include_scanners=True)
    table = _generator(small_world).generate_period_table(period, include_scanners=True)
    assert len(table) == len(records)
    assert table.to_records() == records


def test_columnar_period_matches_record_path_during_outage(small_world):
    """Parity holds through an outage window (device-drop rolls, traffic scaling)."""
    period = StudyPeriod(date(2021, 12, 6), date(2021, 12, 8), name="outage-slice")
    records = _generator(small_world).generate_period(period, include_scanners=False)
    table = _generator(small_world).generate_period_table(period, include_scanners=False)
    assert table.to_records() == records


def test_columnar_period_is_deterministic(small_world):
    period = StudyPeriod(date(2022, 2, 28), date(2022, 3, 1))
    table_a = _generator(small_world).generate_period_table(period)
    table_b = _generator(small_world).generate_period_table(period)
    assert table_a.to_records() == table_b.to_records()


def test_columnar_scanner_flows_match_record_path(small_world):
    """Same registry seed: scanner draws advance identically on both paths."""
    generator = _generator(small_world)
    catalog = generator.server_catalog(ip_version=4)
    scanners = small_world.population.scanner_lines()
    day = date(2022, 2, 28)
    records = generate_scanner_flows(scanners, catalog, day, RngRegistry(5))
    table = FlowTable()
    appended = append_scanner_flows(table, scanners, catalog, day, RngRegistry(5))
    assert appended == len(records)
    assert table.to_records() == records


def test_scanner_flows_touch_many_servers(small_world):
    generator = _generator(small_world)
    catalog = generator.server_catalog(ip_version=4)
    scanners = small_world.population.scanner_lines()
    flows = generate_scanner_flows(scanners, catalog, date(2022, 2, 28), RngRegistry(5))
    assert flows
    per_line = {}
    for flow in flows:
        per_line.setdefault(flow.subscriber_id, set()).add(flow.server_ip)
    # Each scanner touches a large fraction of the catalog.
    for ips in per_line.values():
        assert len(ips) >= 0.5 * len(catalog)


def test_server_catalog_families(small_world):
    generator = _generator(small_world)
    assert all(":" not in ip for _, ip, _, _ in generator.server_catalog(4))
    assert all(":" in ip for _, ip, _, _ in generator.server_catalog(6))
