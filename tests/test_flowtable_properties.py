"""Property/fuzz tests for FlowTable composition against a record-level model.

The parallel generation path leans on a precise contract: merging tables with
:meth:`FlowTable.concat` / :meth:`FlowTable.extend_table` must be *exactly*
equivalent — rows, pools, codes, serialized bytes — to converting the
concatenated record lists with :meth:`FlowTable.from_records`.  These tests
pin that contract with randomized corpora: every composition operator
(``concat``, ``extend_table``, slicing, ``select``/``select_mask``,
``truncate``) is checked against the plain-list reference model, and byte
equality under the store codec is asserted wherever pool order matters.

No hypothesis dependency: the fuzzing is seeded ``random`` loops, so failures
reproduce deterministically from the printed seed.
"""

import io
import random
from datetime import datetime

import pytest

from repro.flows.flowtable import FlowTable
from repro.flows.netflow import make_flow
from repro.store.codec import dump_table

SEEDS = range(8)


def table_bytes(table: FlowTable) -> bytes:
    buffer = io.BytesIO()
    dump_table(table, buffer)
    return buffer.getvalue()


def random_records(rng: random.Random, count: int):
    """A random corpus with deliberately overlapping and novel pool values."""
    providers = [f"provider-{i}" for i in range(rng.randint(1, 6))]
    continents = ["EU", "NA", "AS", "SA"]
    records = []
    for _ in range(count):
        ip_version = 6 if rng.random() < 0.25 else 4
        server = (
            f"fd00::{rng.randrange(1, 64):x}"
            if ip_version == 6
            else f"10.{rng.randrange(3)}.{rng.randrange(4)}.{rng.randrange(1, 64)}"
        )
        records.append(
            make_flow(
                timestamp=datetime(2022, 3, 1 + rng.randrange(4), rng.randrange(24)),
                subscriber_id=rng.randrange(200),
                subscriber_prefix=f"prefix-{rng.randrange(12)}",
                ip_version=ip_version,
                provider_key=rng.choice(providers),
                server_ip=server,
                server_continent=rng.choice(continents),
                server_region=f"region-{rng.randrange(5)}",
                transport=rng.choice(("tcp", "udp")),
                port=rng.choice((443, 1883, 5683, 8883)),
                bytes_down=rng.uniform(0.0, 50_000.0),
                bytes_up=rng.uniform(0.0, 5_000.0),
            )
        )
    return records


def random_chunks(rng: random.Random, records):
    """Split a corpus into random contiguous chunks (empty chunks included)."""
    cuts = sorted(rng.randrange(len(records) + 1) for _ in range(rng.randrange(1, 6)))
    bounds = [0, *cuts, len(records)]
    return [records[a:b] for a, b in zip(bounds, bounds[1:])]


class TestConcat:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_concat_equals_from_records_byte_for_byte(self, seed):
        rng = random.Random(seed)
        records = random_records(rng, rng.randrange(50, 300))
        chunks = random_chunks(rng, records)
        merged = FlowTable.concat([FlowTable.from_records(chunk) for chunk in chunks])
        reference = FlowTable.from_records(records)
        assert merged.to_records() == records
        assert table_bytes(merged) == table_bytes(reference), f"seed={seed}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_extend_table_equals_extend_records(self, seed):
        rng = random.Random(seed)
        left = random_records(rng, rng.randrange(0, 150))
        right = random_records(rng, rng.randrange(0, 150))
        via_tables = FlowTable.from_records(left)
        via_tables.extend_table(FlowTable.from_records(right))
        via_records = FlowTable.from_records(left)
        via_records.extend(right)
        assert table_bytes(via_tables) == table_bytes(via_records), f"seed={seed}"

    def test_concat_of_empties_is_empty(self):
        assert len(FlowTable.concat([])) == 0
        assert len(FlowTable.concat([FlowTable(), FlowTable()])) == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_shared_pool_sources_slices_stay_equivalent(self, seed):
        """Slices share their parent's (larger, differently ordered) pools;
        remapping must still reproduce the record path exactly."""
        rng = random.Random(seed)
        records = random_records(rng, 200)
        parent = FlowTable.from_records(records)
        lo = rng.randrange(0, 100)
        hi = rng.randrange(lo, 200)
        target = FlowTable()
        target.extend_table(parent[lo:hi])
        assert table_bytes(target) == table_bytes(FlowTable.from_records(records[lo:hi]))

    def test_extend_table_with_shared_pools_skips_the_remap(self):
        records = random_records(random.Random(3), 120)
        parent = FlowTable.from_records(records)
        view = parent[10:50]  # shares parent._pools
        parent.extend_table(view)
        assert parent.to_records() == records + records[10:50]


class TestTruncate:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_truncate_matches_list_slicing(self, seed):
        rng = random.Random(seed)
        records = random_records(rng, rng.randrange(1, 120))
        table = FlowTable.from_records(records)
        keep = rng.randrange(0, len(records) + 1)
        table.truncate(keep)
        assert len(table) == keep
        assert table.to_records() == records[:keep]

    def test_truncate_keeps_pools_so_codes_stay_valid(self):
        records = random_records(random.Random(5), 80)
        table = FlowTable.from_records(records)
        table.truncate(0)
        # Re-appending after a truncate reuses the interned pool values.
        table.extend(records)
        assert table.to_records() == records

    def test_truncate_rejects_bad_lengths(self):
        table = FlowTable.from_records(random_records(random.Random(1), 10))
        with pytest.raises(ValueError):
            table.truncate(-1)
        with pytest.raises(ValueError):
            table.truncate(11)


class TestStatefulFuzz:
    """A random op sequence against the plain-list reference model."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_composition_sequences(self, seed):
        rng = random.Random(1000 + seed)
        model = []
        table = FlowTable()
        for _step in range(12):
            op = rng.randrange(4)
            if op == 0:  # append a fresh random chunk via extend_table
                chunk = random_records(rng, rng.randrange(0, 60))
                table.extend_table(FlowTable.from_records(chunk))
                model.extend(chunk)
            elif op == 1 and model:  # truncate to a random length
                keep = rng.randrange(0, len(model) + 1)
                table.truncate(keep)
                del model[keep:]
            elif op == 2 and model:  # re-append a slice of ourselves
                lo = rng.randrange(0, len(model))
                hi = rng.randrange(lo, len(model) + 1)
                table.extend_table(table[lo:hi])
                model.extend(model[lo:hi])
            else:  # select a random subset, continue on the selection
                indices = [i for i in range(len(model)) if rng.random() < 0.7]
                table = table.select(indices)
                model = [model[i] for i in indices]
            assert len(table) == len(model), f"seed={seed}"
            assert table.to_records() == model, f"seed={seed}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_aggregations_interleaved_with_mutations(self, seed):
        """Grouped aggregations between mutations always match a fresh table.

        This drives the GroupIndex cache exactly the way the analyses do --
        aggregate, mutate, aggregate again -- and asserts every result equals
        a recompute on a cache-free ``FlowTable.from_records`` clone, so a
        stale cached grouping can never survive a mutation.  Seeds alternate
        kernel backends so both the fused-python and (when importable) numpy
        paths face the same sequences.
        """
        from repro.flows import kernels

        backends = [kernels.BACKEND_PYTHON]
        if kernels.numpy_available():
            backends.append(kernels.BACKEND_NUMPY)
        kernels.set_backend(backends[seed % len(backends)])
        try:
            rng = random.Random(4000 + seed)
            model = []
            table = FlowTable()
            groupings = (
                ("provider_key",),
                ("provider_key", "timestamp"),
                ("subscriber_id",),
            )

            def check_aggregations():
                fresh = FlowTable.from_records(model)
                by = groupings[rng.randrange(len(groupings))]
                mask = None
                if model and rng.random() < 0.5:
                    mask = bytearray(rng.randrange(2) for _ in model)
                assert table.group_sums(by, ("bytes_down", "bytes_up"), mask=mask) == (
                    fresh.group_sums(by, ("bytes_down", "bytes_up"), mask=mask)
                ), f"seed={seed}"
                assert table.group_distinct_count(by, "server_ip", mask=mask) == (
                    fresh.group_distinct_count(by, "server_ip", mask=mask)
                ), f"seed={seed}"

            check_aggregations()
            for _step in range(10):
                op = rng.randrange(4)
                if op == 0:
                    chunk = random_records(rng, rng.randrange(0, 60))
                    table.extend_table(FlowTable.from_records(chunk))
                    model.extend(chunk)
                elif op == 1 and model:
                    keep = rng.randrange(0, len(model) + 1)
                    table.truncate(keep)
                    del model[keep:]
                elif op == 2 and model:
                    lo = rng.randrange(0, len(model))
                    hi = rng.randrange(lo, len(model) + 1)
                    table.extend_table(table[lo:hi])
                    model.extend(model[lo:hi])
                else:
                    indices = [i for i in range(len(model)) if rng.random() < 0.7]
                    table = table.select(indices)
                    model = [model[i] for i in indices]
                check_aggregations()
        finally:
            kernels.set_backend(None)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_select_mask_and_slice_round_trips(self, seed):
        rng = random.Random(2000 + seed)
        records = random_records(rng, rng.randrange(1, 150))
        table = FlowTable.from_records(records)
        mask = [1 if rng.random() < 0.5 else 0 for _ in records]
        selected = table.select_mask(mask)
        assert selected.to_records() == [r for r, keep in zip(records, mask) if keep]
        lo = rng.randrange(-len(records), len(records))
        step = rng.choice((1, 2, 3, -1, -2))
        assert table[lo::step].to_records() == records[lo::step]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_concat_then_dump_load_round_trip(self, seed):
        from repro.store.codec import load_table

        rng = random.Random(3000 + seed)
        records = random_records(rng, rng.randrange(1, 200))
        chunks = random_chunks(rng, records)
        merged = FlowTable.concat([FlowTable.from_records(chunk) for chunk in chunks])
        reloaded = load_table(io.BytesIO(table_bytes(merged)))
        assert reloaded.to_records() == records
        assert table_bytes(reloaded) == table_bytes(merged)
