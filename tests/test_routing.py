"""Tests for the routing substrate: prefix-to-AS table, BGP events, anycast."""

from datetime import date

from repro.netmodel.geo import world_locations
from repro.routing.anycast import AnycastGroup
from repro.routing.bgp import Announcement, RoutingTable
from repro.routing.events import BgpEvent, BgpEventFeed, EventKind


class TestRoutingTable:
    def test_longest_prefix_match(self):
        table = RoutingTable()
        table.announce(Announcement("10.0.0.0/8", 65001, "Org A"))
        table.announce(Announcement("10.1.0.0/16", 65002, "Org B"))
        assert table.origin_asn("10.1.2.3") == 65002
        assert table.origin_asn("10.2.0.1") == 65001
        assert table.origin_asn("192.0.2.1") is None

    def test_duplicate_announcements_ignored(self):
        table = RoutingTable()
        table.announce(Announcement("10.0.0.0/24", 65001))
        table.announce(Announcement("10.0.0.0/24", 65001))
        assert len(table) == 1

    def test_prefixes_for_asn_and_covers(self):
        table = RoutingTable()
        table.announce_many(
            [Announcement("10.0.0.0/24", 65001), Announcement("10.0.1.0/24", 65002)]
        )
        assert table.prefixes_for_asn(65001) == ["10.0.0.0/24"]
        assert table.covers("10.0.0.0/25")
        assert not table.covers("10.9.0.0/24")

    def test_ipv6_lookup(self):
        table = RoutingTable()
        table.announce(Announcement("fd00::/56", 65010))
        assert table.origin_asn("fd00::1") == 65010
        assert table.origin_asn("10.0.0.1") is None


class TestBgpEvents:
    def test_window_and_kind_filters(self):
        feed = BgpEventFeed(
            [
                BgpEvent(EventKind.BGP_LEAK, date(2022, 3, 1), asn=65001),
                BgpEvent(EventKind.AS_OUTAGE, date(2022, 3, 2), asn=65002),
                BgpEvent(EventKind.AS_OUTAGE, date(2022, 4, 1), asn=65003),
            ]
        )
        assert len(feed.events(date(2022, 2, 28), date(2022, 3, 7))) == 2
        assert len(feed.events(kind=EventKind.AS_OUTAGE)) == 2
        counts = feed.count_by_kind(date(2022, 2, 28), date(2022, 3, 7))
        assert counts[EventKind.BGP_LEAK] == 1

    def test_events_affecting_asn_and_prefix(self):
        feed = BgpEventFeed(
            [
                BgpEvent(EventKind.POSSIBLE_HIJACK, date(2022, 3, 1), asn=65099, prefix="10.0.0.0/24"),
                BgpEvent(EventKind.POSSIBLE_HIJACK, date(2022, 3, 1), asn=64999, prefix="172.16.0.0/24"),
            ]
        )
        affected = feed.events_affecting({65099}, ["192.0.2.0/24"])
        assert len(affected) == 1
        affected_by_prefix = feed.events_affecting(set(), ["10.0.0.0/25"])
        assert len(affected_by_prefix) == 1
        assert feed.events_affecting({1}, ["198.51.100.0/24"]) == []


class TestAnycast:
    def test_catchment_prefers_local_continent(self):
        locations = world_locations()
        eu = next(loc for loc in locations if loc.continent == "EU")
        us = next(loc for loc in locations if loc.continent == "NA")
        group = AnycastGroup("global-accelerator")
        group.add_site(eu)
        group.add_site(us)
        assert group.catchment("EU") == eu
        assert group.catchment("NA") == us
        # Unknown continents fall back deterministically.
        assert group.catchment("AF") in (eu, us)
        assert group.continents() == ["EU", "NA"]

    def test_empty_group(self):
        assert AnycastGroup("empty").catchment("EU") is None
