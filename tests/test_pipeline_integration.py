"""Integration tests for the end-to-end discovery pipeline (Figure 2)."""

from repro.core.discovery import (
    SOURCE_ACTIVE_DNS,
    SOURCE_IPV6_SCAN,
    SOURCE_PASSIVE_DNS,
    SOURCE_TLS,
)
from repro.core.providers import PROVIDERS, get_provider


def test_pipeline_covers_every_provider(small_pipeline_result):
    assert set(small_pipeline_result.combined.providers()) == {s.key for s in PROVIDERS}


def test_daily_results_cover_study_period(small_world, small_pipeline_result):
    period = small_world.config.study_period
    assert sorted(small_pipeline_result.daily_results) == period.days()
    for day, result in small_pipeline_result.daily_results.items():
        assert result.day == day
        assert result.total_count() > 0


def test_discovered_ips_belong_to_the_right_provider(small_world, small_pipeline_result):
    servers = small_world.servers_by_ip()
    for record in small_pipeline_result.combined.records():
        assert record.ip in servers, record.ip
        assert servers[record.ip].provider == record.provider_key


def test_all_four_sources_contribute(small_pipeline_result):
    sources = set()
    for record in small_pipeline_result.combined.records():
        sources.update(record.sources)
    assert {SOURCE_TLS, SOURCE_IPV6_SCAN, SOURCE_PASSIVE_DNS, SOURCE_ACTIVE_DNS} <= sources


def test_sni_provider_mostly_invisible_to_certificate_scans(small_pipeline_result):
    google_records = small_pipeline_result.combined.records("google")
    tls_only = [r for r in google_records if r.sources == {SOURCE_TLS}]
    assert len(tls_only) <= len(google_records) * 0.2


def test_validation_excludes_some_shared_ips(small_pipeline_result):
    assert small_pipeline_result.validation.threshold > 0
    dedicated = small_pipeline_result.dedicated
    combined = small_pipeline_result.combined
    assert dedicated.total_count() <= combined.total_count()


def test_ground_truth_reports_all_inside_ranges(small_pipeline_result):
    assert set(small_pipeline_result.ground_truth) == {"cisco", "siemens", "microsoft"}
    for report in small_pipeline_result.ground_truth.values():
        assert report.all_inside
        assert report.precision == 1.0


def test_microsoft_published_space_larger_than_discovered(small_pipeline_result):
    report = small_pipeline_result.ground_truth["microsoft"]
    assert report.published_address_count > report.discovered_count


def test_table1_rows_complete_and_sorted(small_pipeline_result):
    rows = small_pipeline_result.table1_rows()
    assert len(rows) == len(PROVIDERS)
    names = [row["provider"] for row in rows]
    assert names == sorted(names)
    for row in rows:
        spec = get_provider(row["provider"])
        assert row["strategy"] == spec.strategy or row["strategy"] in ("DI", "PR", "DI+PR")
        assert row["ipv4_slash24"] >= 1


def test_footprints_multi_country_majority(small_pipeline_result):
    reports = small_pipeline_result.footprints
    multi = sum(1 for report in reports.values() if report.multi_country)
    assert multi >= len(reports) * 0.5
    # Single-country providers include the China-only backends.
    assert not reports["baidu"].multi_country
    assert not reports["huawei"].multi_country


def test_ipv6_discovered_only_for_supporting_providers(small_pipeline_result):
    for spec in PROVIDERS:
        ipv6 = small_pipeline_result.combined.ipv6_ips(spec.key)
        if not spec.ipv6_supported or spec.base_ipv6_servers == 0:
            assert ipv6 == set()
    # At least a handful of providers expose IPv6 backends (7 in the paper).
    with_ipv6 = [s.key for s in PROVIDERS if small_pipeline_result.combined.ipv6_ips(s.key)]
    assert len(with_ipv6) >= 4
