"""Tests for the AMQP protocol-header model."""

import pytest

from repro.protocols.amqp import (
    AmqpProtocolId,
    AmqpServerBehaviour,
    ProtocolHeader,
    probe_server,
)


def test_header_roundtrip():
    header = ProtocolHeader(protocol_id=AmqpProtocolId.SASL, major=1, minor=0, revision=0)
    assert ProtocolHeader.decode(header.encode()) == header


def test_header_has_magic_prefix():
    assert ProtocolHeader().encode().startswith(b"AMQP")
    assert len(ProtocolHeader().encode()) == 8


def test_decode_invalid_header_rejected():
    with pytest.raises(ValueError):
        ProtocolHeader.decode(b"HTTP/1.1")
    with pytest.raises(ValueError):
        ProtocolHeader.decode(b"AMQ")


def test_server_requiring_sasl_answers_sasl_header():
    behaviour = AmqpServerBehaviour(requires_sasl=True)
    response = behaviour.handle_header(ProtocolHeader())
    assert response.protocol_id == AmqpProtocolId.SASL


def test_server_echoes_when_sasl_offered():
    behaviour = AmqpServerBehaviour(requires_sasl=True)
    response = behaviour.handle_header(ProtocolHeader(protocol_id=AmqpProtocolId.SASL))
    assert response.protocol_id == AmqpProtocolId.SASL


def test_open_server_echoes_plain_header():
    behaviour = AmqpServerBehaviour(requires_sasl=False)
    response = behaviour.handle_header(ProtocolHeader())
    assert response.protocol_id == AmqpProtocolId.AMQP


def test_probe_server():
    result = probe_server(AmqpServerBehaviour(container_id="hub-1"))
    assert result.spoke_amqp
    assert result.container_id == "hub-1"
