"""Integration tests for the world builder."""

from datetime import timedelta

from repro.core.providers import PROVIDERS, get_provider
from repro.simulation.config import ScenarioConfig
from repro.simulation.world import build_world


def test_world_is_deterministic(small_config, small_world):
    other = build_world(small_config)
    assert sorted(s.ip for s in other.all_servers()) == sorted(
        s.ip for s in small_world.all_servers()
    )
    assert len(other.passive_dns) == len(small_world.passive_dns)


def test_every_provider_has_a_deployment(small_world):
    assert set(small_world.provider_keys()) == {spec.key for spec in PROVIDERS}
    for key in small_world.provider_keys():
        assert small_world.deployments[key].servers


def test_server_ips_are_unique(small_world):
    ips = [server.ip for server in small_world.all_servers()]
    assert len(ips) == len(set(ips))


def test_amazon_is_largest_deployment(small_world):
    sizes = {key: len(dep.ipv4_servers()) for key, dep in small_world.deployments.items()}
    assert sizes["amazon"] == max(sizes.values())


def test_restricted_providers_stay_in_their_country(small_world):
    for key in ("baidu", "huawei"):
        assert small_world.deployments[key].countries() == ["CN"]
    assert small_world.deployments["bosch"].continents() == ["EU"]


def test_ipv6_only_where_supported(small_world):
    for spec in PROVIDERS:
        deployment = small_world.deployments[spec.key]
        if not spec.ipv6_supported or spec.base_ipv6_servers == 0:
            assert deployment.ipv6_servers() == []


def test_routing_table_covers_all_servers(small_world):
    for server in small_world.all_servers():
        announcement = small_world.routing_table.lookup(server.ip)
        assert announcement is not None
        assert announcement.origin_asn == server.asn


def test_geo_database_locates_all_servers(small_world):
    for server in small_world.all_servers():
        location = small_world.geo_database.lookup_ip(server.ip)
        assert location is not None


def test_pr_providers_hosted_on_cloud_ases(small_world):
    for key in ("bosch", "sap", "ptc", "siemens", "sierra", "cisco"):
        deployment = small_world.deployments[key]
        for asn in deployment.asns():
            autonomous_system = small_world.as_registry.get(asn)
            assert autonomous_system.is_cloud_or_cdn(), key


def test_di_providers_on_their_own_ases(small_world):
    for key in ("amazon", "microsoft", "google", "ibm"):
        deployment = small_world.deployments[key]
        organization = get_provider(key).organization
        for asn in deployment.asns():
            assert small_world.as_registry.get(asn).organization == organization


def test_active_servers_churn_only_for_churny_providers(small_world):
    period = small_world.config.study_period
    first = {s.ip for s in small_world.active_servers_for_provider("sap", period.start)}
    later = {s.ip for s in small_world.active_servers_for_provider("sap", period.start + timedelta(days=6))}
    assert first != later
    stable_first = {s.ip for s in small_world.active_servers_for_provider("tencent", period.start)}
    stable_later = {
        s.ip for s in small_world.active_servers_for_provider("tencent", period.start + timedelta(days=6))
    }
    assert stable_first == stable_later


def test_published_ranges_cover_deployments(small_world):
    assert set(small_world.published_ranges) == {"cisco", "siemens", "microsoft"}
    from repro.netmodel.addressing import ip_in_prefix

    for key, prefixes in small_world.published_ranges.items():
        for server in small_world.deployments[key].servers:
            assert any(ip_in_prefix(server.ip, prefix) for prefix in prefixes)


def test_hitlist_contains_only_ipv6_backend_addresses(small_world):
    servers = small_world.servers_by_ip()
    for address in small_world.hitlist:
        assert address in servers
        assert servers[address].is_ipv6


def test_blocklists_contain_some_backend_ips(small_world):
    backend_ips = [s.ip for s in small_world.all_servers() if not s.is_ipv6]
    listed = small_world.blocklists.check_many(backend_ips)
    assert 0 < len(listed) <= small_world.config.n_blocklisted_backend_ips


def test_bgp_events_do_not_touch_backends(small_world):
    period = small_world.config.study_period
    asns = {s.asn for s in small_world.all_servers()}
    prefixes = sorted({s.prefix for s in small_world.all_servers()})
    affecting = small_world.bgp_events.events_affecting(asns, prefixes, period.start, period.end)
    assert affecting == []


def test_shared_servers_exist_for_google(small_world):
    deployment = small_world.deployments["google"]
    assert any(not server.dedicated_iot for server in deployment.servers)


def test_vantage_points_two_eu_one_us(small_world):
    continents = [vp.location.continent for vp in small_world.vantage_points]
    assert continents.count("EU") == 2
    assert continents.count("NA") == 1
