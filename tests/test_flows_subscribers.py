"""Tests for the subscriber population."""

from repro.core.providers import PROVIDERS
from repro.flows.subscribers import SubscriberPopulation
from repro.simulation.rng import RngRegistry


def _population(n_lines=600, **kwargs):
    return SubscriberPopulation.build(
        n_lines=n_lines, providers=PROVIDERS, rng=RngRegistry(11), **kwargs
    )


def test_population_size_and_determinism():
    a = _population()
    b = _population()
    assert len(a) == 600
    assert [line.ip_version for line in a.lines] == [line.ip_version for line in b.lines]
    assert [len(line.devices) for line in a.lines] == [len(line.devices) for line in b.lines]


def test_iot_household_fraction_roughly_respected():
    population = _population(n_lines=1000, iot_household_fraction=0.45)
    fraction = len(population.iot_lines()) / len(population)
    assert 0.30 < fraction < 0.60


def test_ipv6_fraction_roughly_respected():
    population = _population(n_lines=1000, ipv6_line_fraction=0.08)
    fraction = sum(1 for line in population.lines if line.ip_version == 6) / len(population)
    assert 0.03 < fraction < 0.15


def test_scanner_lines_marked():
    population = _population(n_scanner_lines=3)
    assert len(population.scanner_lines()) == 3
    assert all(line.is_scanner for line in population.scanner_lines())


def test_heavy_lines_host_many_providers():
    population = _population(n_lines=1000, n_heavy_lines=10)
    max_providers = max(len(line.providers()) for line in population.iot_lines())
    assert max_providers >= 5


def test_lines_for_provider_consistency():
    population = _population()
    for line in population.lines_for_provider("amazon"):
        assert "amazon" in line.providers()


def test_device_count_matches_lines():
    population = _population()
    assert population.device_count() == sum(len(line.devices) for line in population.lines)
    assert population.device_count() >= len(population.iot_lines())


def test_zero_lines_rejected():
    import pytest

    with pytest.raises(ValueError):
        SubscriberPopulation.build(n_lines=0, providers=PROVIDERS, rng=RngRegistry(1))
