"""Benchmark E-F12: per-subscriber daily traffic distributions (Figure 12a/b/c)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig12_per_subscriber_volumes

MB = 1024.0 * 1024.0


def test_fig12_per_subscriber_volumes(benchmark, context):
    result = benchmark(fig12_per_subscriber_volumes, context)
    emit("Figure 12: per-subscriber daily traffic distributions", result.render())

    # Figure 12a: the vast majority of lines exchange small volumes with IoT
    # backends (paper: >99% below 10 MB/day; far below video-streaming levels).
    assert result.total_down.fraction_below(10 * MB) > 0.80
    assert result.total_down.fraction_below(100 * MB) > 0.95
    assert result.total_up.fraction_below(10 * MB) > 0.80
    assert result.total_down.quantile(0.5) < 5 * MB

    # Figure 12b: nearly every provider's median subscriber stays light; only the
    # bulk-ingestion provider shows heavier per-line volumes.
    light_providers = [
        label
        for label, distribution in result.by_provider_down.items()
        if distribution.quantile(0.5) < 10 * MB
    ]
    assert len(light_providers) >= len(result.by_provider_down) - 2

    # Figure 12c: only the AMQP bulk-ingestion port shows a noticeable share of
    # lines exchanging large volumes (paper: ~18% between 100 MB and 1 GB/day).
    amqp = result.by_port_down.get("TCP/5671 (AMQPS)")
    assert amqp is not None
    heavy_amqp = 1.0 - amqp.fraction_below(20 * MB)
    assert heavy_amqp > 0.05
    mqtts = result.by_port_down.get("TCP/8883 (MQTTS)")
    if mqtts is not None and len(mqtts):
        heavy_mqtts = 1.0 - mqtts.fraction_below(20 * MB)
        assert heavy_amqp > heavy_mqtts
