"""Benchmark E-X1 (extension): inter-provider hosting dependencies and cascade
exposure (Sections 4.2 and 7 of the paper)."""

from conftest import emit

from repro.core.dependencies import (
    cascade_exposure,
    hosting_dependencies,
    most_critical_organization,
    shared_hosting_organizations,
)
from repro.core.providers import CLOUD_AWS, get_provider
from repro.core.report import format_percent, render_table


def test_cascade_dependencies(benchmark, context):
    dependencies = benchmark(
        hosting_dependencies,
        context.result.combined,
        context.world.routing_table,
        context.world.as_registry,
    )
    critical = most_critical_organization(dependencies)
    impacts = cascade_exposure(dependencies, critical, minimum_fraction=0.0)
    rows = [
        [get_provider(impact.provider_key).name, format_percent(impact.affected_fraction)]
        for impact in impacts
    ]
    emit(
        f"Extension: cascade exposure to a full outage of {critical}",
        render_table(["Provider", "Backend share hosted there"], rows),
    )

    # Six providers rely on public clouds for their gateways (Section 4.2).
    third_party = [key for key, dep in dependencies.items() if dep.relies_on_third_party]
    assert len(third_party) >= 6
    # At least one hosting organisation serves several IoT backends, so outages can
    # cascade (Section 7); AWS is the most widely shared host.
    shared = shared_hosting_organizations(dependencies)
    assert CLOUD_AWS in shared and len(shared[CLOUD_AWS]) >= 3
    assert critical == CLOUD_AWS
    # Some providers would lose their entire gateway footprint in such an outage.
    assert any(impact.affected_fraction == 1.0 for impact in impacts)
