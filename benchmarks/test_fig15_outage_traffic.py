"""Benchmark E-F15: AWS outage impact on downstream traffic (Figure 15)."""

from conftest import emit

from repro.experiments.disruption_experiments import fig15_fig16_outage


def test_fig15_outage_traffic(benchmark, context):
    result = benchmark(fig15_fig16_outage, context)
    emit("Figure 15: AWS us-east-1 outage, downstream traffic of T1", result.render("15"))

    # During the outage, T1's US-East downstream traffic drops well below the
    # previous week's minimum (paper: more than 14.5%).
    assert result.traffic_drop_us_east() > 0.10
    # The EU regions are barely affected.
    assert result.traffic_drop_eu() < result.traffic_drop_us_east() / 2
    # The EU regions serve a multiple of the US-East traffic (paper: more than 3x).
    assert result.eu_to_us_traffic_ratio() > 1.5
