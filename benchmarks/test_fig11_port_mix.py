"""Benchmark E-F11: traffic volume per port and provider (Figure 11)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig11_port_mix


def test_fig11_port_mix(benchmark, context):
    result = benchmark(fig11_port_mix, context)
    emit("Figure 11: share of traffic volume per port and provider", result.render())

    assert result.mix
    # Secure MQTT on its standard port is used by more than half of the providers.
    mqtts_users = [label for label in result.mix if result.share(label, "TCP/8883 (MQTTS)") > 0.0]
    assert len(mqtts_users) >= len(result.mix) / 2
    # Web ports carry a substantial share for several providers...
    https_heavy = [label for label in result.mix if result.share(label, "TCP/443 (HTTPS)") > 0.05]
    assert len(https_heavy) >= 3
    # ...and some providers rely on non-standard or application-specific ports
    # (ActiveMQ on 61616, AMQP bulk ingestion on 5671).
    d4 = context.anonymization.label("sap")
    d3 = context.anonymization.label("ptc")
    assert result.share(d4, "TCP/5671 (AMQPS)") > 0.4
    assert result.share(d3, "TCP/61616 (ActiveMQ)") > 0.1
    # No single pattern describes all providers: the dominant port differs.
    assert len({result.dominant_port(label) for label in result.mix}) >= 3
