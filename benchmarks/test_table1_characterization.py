"""Benchmark E-T1: regenerate Table 1 (provider characteristics)."""

from conftest import emit

from repro.core.providers import STRATEGY_DI, STRATEGY_PR
from repro.experiments.characterization import table1_characterization


def test_table1_characterization(benchmark, context):
    result = benchmark(table1_characterization, context)
    emit("Table 1: IoT backend characteristics", result.render())

    assert len(result.rows) == 16
    amazon = result.row_for("Amazon IoT")
    # Amazon operates by far the largest backend (paper: ~9,000 /24s vs hundreds).
    assert amazon["ipv4_slash24"] == max(row["ipv4_slash24"] for row in result.rows)
    # The single-country backends stay single-country.
    assert result.row_for("Baidu IoT")["countries"] == 1
    assert result.row_for("Huawei IoT")["countries"] == 1
    # The majority of providers span multiple countries.
    multi_country = sum(1 for row in result.rows if row["countries"] > 1)
    assert multi_country >= 10
    # Strategy split: nine dedicated-infrastructure, six public-cloud providers.
    strategies = [row["strategy"] for row in result.rows]
    assert strategies.count(STRATEGY_DI) == 9
    assert strategies.count(STRATEGY_PR) == 6
