"""Benchmark E-F9: hourly downstream traffic volume per provider (Figure 9)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig8_subscriber_activity, fig9_traffic_volume


def test_fig9_traffic_volume(benchmark, context):
    result = benchmark(fig9_traffic_volume, context)
    emit("Figure 9: normalized downstream traffic volume per provider per hour", result.render())

    assert "T1" in result.providers()
    # Volumes differ strongly across providers.
    totals = {label: result.total(label) for label in result.providers()}
    assert max(totals.values()) > 10 * min(v for v in totals.values() if v > 0)
    # The number of subscriber lines is not a good predictor of traffic volume:
    # the per-line volume differs by more than a factor of three across providers.
    activity = fig8_subscriber_activity(context, min_lines_per_hour=1)
    per_line = {}
    for label in result.providers():
        lines = activity.total(label) if label in activity.providers() else 0.0
        if lines:
            per_line[label] = totals[label] / lines
    assert max(per_line.values()) > 3 * min(per_line.values())
