"""Benchmark E-F4: stability of the discovered backend IP sets (Figure 4)."""

from conftest import emit

from repro.core.stability import max_churn_by_provider
from repro.experiments.characterization import fig4_stability


def test_fig4_stability(benchmark, context):
    result = benchmark(fig4_stability, context)
    emit("Figure 4: stability of backend IP sets", result.render())

    churn = max_churn_by_provider(result.comparisons)
    # Providers on (shared) public cloud infrastructure churn; most others barely do.
    cloud_reliant = ["sap", "siemens", "amazon"]
    stable = ["tencent", "baidu", "google", "ibm", "huawei", "fujitsu"]
    assert max(churn.get(key, 0.0) for key in cloud_reliant) > 0.05
    assert all(churn.get(key, 0.0) < 0.05 for key in stable)
    # Day-over-day change is small for every provider (weekly measurements suffice).
    day1 = [c for c in result.comparisons if (c.compared_day - c.reference_day).days == 1]
    assert day1
    assert all(c.churn_fraction < 0.30 for c in day1)
