"""Benchmark P-O1: observability overhead on the hot paths.

The ``repro.obs`` contract is that instrumentation is effectively free: the
metrics helpers are guarded by a module flag (two dict operations per *bulk*
matcher call when enabled, a plain ``return`` when disabled) and spans are
emitted at batch granularity only.  This benchmark measures both states on the
two instrumented paths that matter:

* the matcher hot path (``CompiledPatternSet.match_many`` over a >=50k-name
  corpus) — enabled overhead must stay within 3%;
* a full serial sweep scenario (world build + generation + metrics) with
  tracing *and* metrics collection on — a looser guard, because a multi-second
  end-to-end run on a shared 1-CPU container carries scheduling noise far
  larger than the instrumentation itself.

Interleaved min-of-N repetitions cancel drift (cache warmup, CPU frequency)
that would otherwise masquerade as overhead.  Results land in
``BENCH_obs.json`` at the repository root.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from conftest import emit
from test_perf_matcher import CORPUS_SIZE, _build_corpus

from repro.core.patterns import PatternSet
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.bench import bench_env
from repro.obs.metrics import MetricsRegistry
from repro.simulation.config import ScenarioConfig
from repro.sweeps.grid import ScenarioGrid
from repro.sweeps.runner import SweepRunner

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

#: Interleaved repetitions per state; min-of-N is reported.  The order within
#: each repetition alternates so neither state systematically runs on a warmer
#: cache or a busier scheduler slice.
MATCHER_REPS = 9
SWEEP_REPS = 2

#: Acceptance bars: the matcher hot path must absorb instrumentation within
#: 3%; the end-to-end sweep guard is a noise backstop, not a precision claim.
MATCHER_MAX_RATIO = 1.03
SWEEP_MAX_RATIO = 1.5


def _time_match_many(engine, corpus) -> float:
    start = time.perf_counter()
    engine.match_many(corpus)
    return time.perf_counter() - start


def _time_sweep(tmp_path: Path, label: str) -> float:
    base = ScenarioConfig.small(seed=11).with_overrides(n_subscriber_lines=60)
    grid = ScenarioGrid.from_strings(base, ["sampling_ratio=1"])
    runner = SweepRunner(
        metrics=("traffic",), workers=1, store=tmp_path / f"store-{label}"
    )
    start = time.perf_counter()
    result = runner.run(grid)
    elapsed = time.perf_counter() - start
    assert all(outcome.ok for outcome in result.outcomes)
    return elapsed


def test_perf_obs_overhead(tmp_path):
    corpus = _build_corpus(CORPUS_SIZE // 2, seed=7)
    engine = PatternSet.for_providers().engine()
    engine.match_many(corpus[:1000])  # warm caches outside the timed region

    matcher_disabled = []
    matcher_enabled = []
    previous = obs_metrics.set_registry(MetricsRegistry())
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for rep in range(MATCHER_REPS):
            states = (False, True) if rep % 2 == 0 else (True, False)
            for enabled in states:
                if enabled:
                    obs_metrics.enable()
                    matcher_enabled.append(_time_match_many(engine, corpus))
                else:
                    obs_metrics.disable()
                    matcher_disabled.append(_time_match_many(engine, corpus))
    finally:
        if gc_was_enabled:
            gc.enable()
        obs_metrics.disable()
        obs_metrics.set_registry(previous)
    matcher_disabled_seconds = min(matcher_disabled)
    matcher_enabled_seconds = min(matcher_enabled)
    matcher_ratio = matcher_enabled_seconds / matcher_disabled_seconds

    sweep_disabled = []
    sweep_enabled = []
    for rep in range(SWEEP_REPS):
        sweep_disabled.append(_time_sweep(tmp_path, f"plain-{rep}"))
        previous = obs_metrics.set_registry(MetricsRegistry())
        obs_trace.enable(tmp_path / f"trace-{rep}.jsonl")
        obs_metrics.enable()
        try:
            sweep_enabled.append(_time_sweep(tmp_path, f"obs-{rep}"))
        finally:
            obs_metrics.disable()
            obs_metrics.set_registry(previous)
            obs_trace.disable()
    sweep_disabled_seconds = min(sweep_disabled)
    sweep_enabled_seconds = min(sweep_enabled)
    sweep_ratio = sweep_enabled_seconds / sweep_disabled_seconds

    payload = {
        "benchmark": "obs-instrumentation-overhead",
        **bench_env(),
        "corpus_size": len(corpus),
        "matcher_reps": MATCHER_REPS,
        "matcher_disabled_seconds": round(matcher_disabled_seconds, 4),
        "matcher_enabled_seconds": round(matcher_enabled_seconds, 4),
        "matcher_overhead_ratio": round(matcher_ratio, 4),
        "sweep_reps": SWEEP_REPS,
        "sweep_disabled_seconds": round(sweep_disabled_seconds, 4),
        "sweep_enabled_seconds": round(sweep_enabled_seconds, 4),
        "sweep_overhead_ratio": round(sweep_ratio, 4),
        # Speedup of leaving observability off (~1.0: disabled cost is zero).
        "disabled_speedup": round(matcher_ratio, 4),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: observability overhead", json.dumps(payload, indent=2))

    assert matcher_ratio <= MATCHER_MAX_RATIO, (
        f"matcher overhead {matcher_ratio:.4f} exceeds {MATCHER_MAX_RATIO}"
    )
    assert sweep_ratio <= SWEEP_MAX_RATIO, (
        f"sweep overhead {sweep_ratio:.4f} exceeds {SWEEP_MAX_RATIO}"
    )
