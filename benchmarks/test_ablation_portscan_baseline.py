"""Benchmark E-B1 (ablation): port-scan-only baseline vs. the methodology."""

from conftest import emit

from repro.experiments.disruption_experiments import ablation_portscan_baseline


def test_ablation_portscan_baseline(benchmark, context):
    result = benchmark(ablation_portscan_baseline, context)
    emit("Ablation: port-scan-only baseline", result.render())

    report = result.report
    # Probing only the standard IoT ports misses part of the backend addresses
    # (providers serving IoT on Web or non-standard ports only).
    assert report.miss_fraction > 0.02
    assert report.missed_backends
    # And the candidates it does find cannot be attributed to a provider.
    assert report.unattributable == report.candidate_ips
    assert len(report.reference_ips) > 0
