"""Benchmark P-G1: per-hour workload generation, serial vs. multiprocess.

Times ``generate_period_table`` over the full main study period at the
default scale with one worker (the serial path) against a multiprocess pool
(``repro.flows.parallel``), asserts the two outputs are **byte-identical**
under the store codec — the property the whole feature rests on — and records
the numbers in ``BENCH_genpar.json`` at the repository root.

The speedup bar is necessarily conditional on the machine: a worker pool
cannot beat the serial path without CPUs to run on.  With four or more
visible CPUs the benchmark enforces >= 2x over serial; with fewer it still
exercises the parallel dispatch (two workers, byte-identity checked) and
records the measured ratio without enforcing it, so the artifact stays
regenerable — and honest — on small CI runners.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path

from conftest import emit

from repro.flows.parallel import available_cpus
from repro.obs.bench import bench_env
from repro.store.codec import dump_table

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_genpar.json"

#: Speedup enforced only at or above this CPU count (see module docstring).
ENFORCE_MIN_CPUS = 4
ENFORCED_SPEEDUP = 2.0

#: Workers used for the parallel measurement (at least two, at most four).
MAX_WORKERS = 4


def _table_bytes(table) -> bytes:
    buffer = io.BytesIO()
    dump_table(table, buffer)
    return buffer.getvalue()


def test_perf_parallel_generation(context):
    world = context.world
    period = world.config.study_period
    cpus = available_cpus()
    workers = max(2, min(MAX_WORKERS, cpus))

    serial_seconds = float("inf")
    serial_table = None
    for _ in range(3):
        generator = world.workload_generator()
        start = time.perf_counter()
        serial_table = generator.generate_period_table(period)
        serial_seconds = min(serial_seconds, time.perf_counter() - start)

    parallel_seconds = float("inf")
    parallel_table = None
    for _ in range(3):
        generator = world.workload_generator()
        start = time.perf_counter()
        parallel_table = generator.generate_period_table(period, workers=workers)
        parallel_seconds = min(parallel_seconds, time.perf_counter() - start)

    # The contract before any timing: parallel generation is byte-identical,
    # so the artifact-store content address cannot depend on gen_workers.
    assert len(parallel_table) == len(serial_table)
    assert _table_bytes(parallel_table) == _table_bytes(serial_table)

    speedup = serial_seconds / parallel_seconds
    enforced = cpus >= ENFORCE_MIN_CPUS
    payload = {
        "benchmark": "parallel-hour-generation",
        **bench_env(),
        "flow_count": len(serial_table),
        "days": period.n_days,
        "hours": period.n_days * 24,
        "workers": workers,
        "cpus": cpus,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
        "enforced": enforced,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: parallel per-hour workload generation", json.dumps(payload, indent=2))

    if enforced:
        # The acceptance bar for this optimization on real hardware.
        assert speedup >= ENFORCED_SPEEDUP
