"""Benchmark P-M1: bulk FQDN classification, legacy scan vs. compiled engine.

Times the seed-equivalent per-pattern scan against the suffix-indexed
:class:`~repro.core.matcher.CompiledPatternSet` on a >=100k-name corpus
(matching + near-miss + random names for all 16 providers) and records the
numbers in ``BENCH_matcher.json`` at the repository root so future PRs can
track the perf trajectory.  The acceptance bar is a >=10x speedup.
"""

from __future__ import annotations

import json
import random
import re
import time
from pathlib import Path

from conftest import emit

from repro.core.patterns import PatternSet
from repro.core.providers import PROVIDERS
from repro.dns.names import SUBDOMAIN_FIXED, build_fqdn, region_label
from repro.netmodel.geo import world_locations
from repro.obs.bench import bench_env

#: Full corpus size for the compiled engine; the legacy path is timed on a
#: sample and scaled, because the seed implementation would take many seconds.
CORPUS_SIZE = 100_000
LEGACY_SAMPLE_SIZE = 10_000

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_matcher.json"


def _build_corpus(size: int, seed: int = 42) -> list:
    rng = random.Random(seed)
    locations = world_locations()
    names = []
    specs = list(PROVIDERS)
    while len(names) < size:
        spec = specs[rng.randrange(len(specs))]
        scheme = spec.naming
        kind = rng.random()
        if scheme.subdomain_kind == SUBDOMAIN_FIXED:
            name = scheme.fixed_fqdns[rng.randrange(len(scheme.fixed_fqdns))]
        else:
            location = locations[rng.randrange(len(locations))]
            region = region_label(
                scheme, location.region_code, location.airport_code, rng.randrange(4)
            )
            name = build_fqdn(
                scheme,
                customer_id=f"tenant-{rng.randrange(50_000):05d}",
                region=region if rng.random() < 0.7 else None,
            )
        if kind < 0.4:
            names.append(name)  # matching
        elif kind < 0.7:
            # near miss: wrong label or grafted suffix
            if rng.random() < 0.5:
                names.append(f"x{rng.randrange(1000)}.notiot.{scheme.second_level_domain}")
            else:
                names.append(name + ".attacker.example")
        else:
            labels = rng.randrange(2, 5)
            names.append(
                ".".join(f"h{rng.randrange(10_000)}" for _ in range(labels)) + ".example"
            )
    return names


def _legacy_match(patterns, fqdn):
    """The seed path, replicated verbatim: ``PatternSet.match`` sorted the
    provider keys on every call and ``DomainPattern.matches`` normalized the
    name, called ``re.compile`` (hitting ``re._cache``), and searched both the
    bare and the dotted spelling on every evaluation.
    """
    for provider_key in sorted(patterns):
        for spec in patterns[provider_key]:
            name = fqdn.rstrip(".").lower()
            pattern = re.compile(spec.regex, re.IGNORECASE)
            if pattern.search(name) or pattern.search(name + "."):
                return provider_key
    return None


def test_perf_matcher_bulk_classification():
    pattern_set = PatternSet.for_providers()
    corpus = _build_corpus(CORPUS_SIZE)
    sample = corpus[:LEGACY_SAMPLE_SIZE]

    # Legacy (seed) path, timed on the sample.
    start = time.perf_counter()
    legacy_results = [_legacy_match(pattern_set.patterns, name) for name in sample]
    legacy_seconds = time.perf_counter() - start
    legacy_ops = len(sample) / legacy_seconds

    # Compiled engine: build (timed separately) + bulk classification.
    start = time.perf_counter()
    engine = PatternSet.for_providers().engine()
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    bulk = engine.match_many(corpus)
    engine_seconds = time.perf_counter() - start
    engine_ops = len(corpus) / engine_seconds

    # Parity on the legacy sample: identical provider assignments.
    mismatches = [
        name for name, expected in zip(sample, legacy_results) if bulk[name] != expected
    ]
    assert not mismatches, mismatches[:5]

    speedup = engine_ops / legacy_ops
    payload = {
        "benchmark": "matcher-bulk-classification",
        **bench_env(),
        "corpus_size": len(corpus),
        "distinct_names": len(set(corpus)),
        "legacy_sample_size": len(sample),
        "legacy_seconds": round(legacy_seconds, 4),
        "legacy_ops_per_sec": round(legacy_ops),
        "engine_build_seconds": round(build_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "engine_ops_per_sec": round(engine_ops),
        "speedup": round(speedup, 1),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit(
        "Benchmark: bulk FQDN classification",
        json.dumps(payload, indent=2),
    )

    assert speedup >= 10.0, f"expected >=10x speedup, measured {speedup:.1f}x"
