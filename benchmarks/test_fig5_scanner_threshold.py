"""Benchmark E-F5: scanner threshold vs. server coverage and #scanners (Figure 5)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig5_scanner_threshold


def test_fig5_scanner_threshold(benchmark, context):
    result = benchmark(fig5_scanner_threshold, context)
    emit("Figure 5: scanner threshold sweep", result.render())

    counts = [point.scanner_line_count for point in result.points]
    coverages = [point.server_coverage_fraction for point in result.points]
    # Raising the threshold excludes fewer lines...
    assert counts == sorted(counts, reverse=True)
    # ...while the visible share of the backend barely moves (paper: 27% -> 28%).
    assert max(coverages) - min(coverages) < 0.10
    # The strict threshold (10) flags many more lines than the adopted one (100).
    assert result.scanners_at(10) > result.scanners_at(100)
    assert result.scanners_at(100) >= context.config.n_scanner_lines
    # Coverage sits well below 100%: remote backends are never contacted from a
    # single European ISP.
    assert 0.10 < result.coverage_at(100) < 0.75
