"""Benchmark E-F10: downstream/upstream traffic ratios (Figure 10)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig10_direction_ratio


def test_fig10_direction_ratio(benchmark, context):
    result = benchmark(fig10_direction_ratio, context)
    emit("Figure 10: downstream/upstream byte ratio per provider", result.render())

    ratios = result.overall
    assert ratios
    # Both downstream-heavy and upstream-heavy providers exist; the spread covers
    # the paper's "less than 0.33 to more than 3" observation qualitatively.
    assert any(ratio > 1.5 for ratio in ratios.values())
    assert any(ratio < 0.75 for ratio in ratios.values())
    # The surveillance-style provider uploads more than it downloads.
    surveillance = context.anonymization.label("tencent")
    assert ratios[surveillance] < 1.0
    # The prime-time entertainment-style provider is downstream-heavy.
    assert ratios["T1"] > 1.5
