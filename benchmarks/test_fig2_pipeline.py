"""Benchmark E-F2: the end-to-end methodology outcome (Figure 2)."""

from conftest import emit

from repro.experiments.characterization import pipeline_summary


def test_fig2_pipeline_summary(benchmark, context):
    result = benchmark(pipeline_summary, context)
    emit("Figure 2: methodology outcome", result.render())

    # IPv4 backends dominate and IPv6 support is present but much rarer (paper:
    # only seven of the sixteen providers expose IPv6 backends).
    assert result.total_ipv4 > result.total_ipv6 > 0
    assert 4 <= result.providers_with_ipv6 <= 8
    # Validation removes some shared (non-dedicated) addresses.
    assert result.dedicated_ipv4 <= result.total_ipv4
    assert result.shared_ips > 0
