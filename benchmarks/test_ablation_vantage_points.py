"""Benchmark E-A1 (ablation): active-DNS vantage-point diversity (Section 3.3)."""

from conftest import emit

from repro.experiments.disruption_experiments import ablation_vantage_points


def test_ablation_vantage_points(benchmark, context):
    result = benchmark(ablation_vantage_points, context)
    emit("Ablation: active-DNS vantage points", result.render())

    # Resolving from three vantage points (two in Europe, one in the US) discovers
    # more addresses than a single European vantage point (paper: ~17% more).
    assert result.all_vp_ips > result.single_vp_ips
    assert result.gain_fraction > 0.02
