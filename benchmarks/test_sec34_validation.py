"""Benchmark E-V34: ground-truth validation (Section 3.4)."""

from conftest import emit

from repro.experiments.characterization import sec34_validation


def test_sec34_validation(benchmark, context):
    result = benchmark(sec34_validation, context)
    emit("Section 3.4: validation against ground truth", result.render())

    # Cisco, Siemens, and Microsoft publish (parts of) their ranges.
    assert set(result.ground_truth) == {"cisco", "siemens", "microsoft"}
    # Every discovered address falls inside the published ranges.
    for report in result.ground_truth.values():
        assert report.all_inside
    # Microsoft's published space is much larger than the discovered set
    # (the paper finds 484 of >12,000 listed addresses).
    microsoft = result.ground_truth["microsoft"]
    assert microsoft.published_address_count > 4 * microsoft.discovered_count
    # The traffic volume attributed to missed servers stays below a few percent
    # (the paper reports an underestimation of less than 1%).
    for report in result.traffic_reports.values():
        assert report.underestimation_fraction < 0.05
