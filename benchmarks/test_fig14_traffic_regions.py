"""Benchmark E-F14: traffic exchanged per server continent (Figure 14)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig13_fig14_region_crossing


def test_fig14_traffic_regions(benchmark, context):
    result = benchmark(fig13_fig14_region_crossing, context)
    emit("Figure 14: share of traffic per server continent", result.render())

    traffic = result.report.traffic_by_continent
    # The majority of IoT traffic stays within Europe (paper: >62%)...
    assert traffic["EU"] > 0.5
    # ...but a substantial fraction is exchanged with servers on other continents
    # (paper: around 35%, mostly with the US).
    cross_continent = 1.0 - traffic["EU"]
    assert 0.2 < cross_continent < 0.5
    assert traffic["NA"] == max(v for k, v in traffic.items() if k != "EU")
