"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the default
scenario scale.  Building the world, running the discovery pipeline, and
generating the flows happen once per session; the benchmarks then measure the
analysis step itself and print the regenerated rows/series.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext, build_context
from repro.simulation.config import ScenarioConfig


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """The default-scale experiment context shared by all benchmarks."""
    ctx = build_context(ScenarioConfig.default(seed=7))
    # Pre-compute the expensive shared artifacts so individual benchmarks measure
    # only their own analysis step.
    ctx.clean_flows()
    ctx.outage_flows()
    return ctx


def emit(title: str, text: str) -> None:
    """Print a regenerated artefact with a visible banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
