"""Benchmark E-F3: per-source contribution of discovered IPs (Figure 3)."""

from conftest import emit

from repro.core.source_attribution import CATEGORY_PASSIVE_DNS, CATEGORY_SCAN
from repro.experiments.characterization import fig3_source_contribution


def test_fig3_source_contribution(benchmark, context):
    result = benchmark(fig3_source_contribution, context)
    emit("Figure 3: contribution of each data source", result.render())

    # Amazon has by far the most discovered addresses.
    totals = {b.provider_key: b.total for b in result.breakdowns if b.ip_version == 4}
    assert totals["amazon"] == max(totals.values())
    # Certificate scans alone contribute (almost) nothing for the SNI-based
    # provider (Google); passive DNS dominates there.
    google = result.breakdown_for("google", 4)
    assert google.fraction(CATEGORY_SCAN) <= 0.05
    assert google.fraction(CATEGORY_PASSIVE_DNS) >= 0.3
    # Certificate scans are the main single source for Microsoft/SAP/Tencent
    # (the paper detects all their backends via Censys).
    for key in ("microsoft", "sap", "tencent"):
        breakdown = result.breakdown_for(key, 4)
        single_source_scan = breakdown.fraction(CATEGORY_SCAN)
        assert single_source_scan >= breakdown.fraction(CATEGORY_PASSIVE_DNS)
    # IPv6 backends are discovered for Amazon and Google.
    assert result.breakdown_for("amazon", 6).total > 0
    assert result.breakdown_for("google", 6).total > 0
