"""Benchmark P-W1: workload generation, record path vs. columnar path.

Times the seed-equivalent record-by-record generator (one ``FlowRecord`` per
flow, candidate servers re-hashed every device-hour) against
``generate_period_table`` (per-device invariants resolved once, hourly batches
appended straight into ``FlowTable`` columns) on a multi-day slice of the
default-scale scenario, plus the per-record vs. column-wise NetFlow sampling
export, and records the numbers in ``BENCH_workload.json`` at the repository
root so future PRs can track the perf trajectory.  Both comparisons also
assert bit-identical output, so the benchmark doubles as a full-scale parity
check.
"""

from __future__ import annotations

import json
import time
from datetime import date
from pathlib import Path

from conftest import emit

from repro.flows.netflow import NetFlowCollector
from repro.obs.bench import bench_env
from repro.simulation.clock import StudyPeriod
from repro.simulation.rng import RngRegistry

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_workload.json"

#: A three-day slice keeps the record path's share of the session affordable.
BENCH_PERIOD = StudyPeriod(date(2022, 2, 28), date(2022, 3, 3), name="bench-workload")

SAMPLING_RATIO = 10


def test_perf_workload_generation(context):
    world = context.world

    start = time.perf_counter()
    records = world.workload_generator().generate_period(BENCH_PERIOD)
    record_seconds = time.perf_counter() - start

    columnar_seconds = float("inf")
    table = None
    for _ in range(3):
        generator = world.workload_generator()
        start = time.perf_counter()
        table = generator.generate_period_table(BENCH_PERIOD)
        columnar_seconds = min(columnar_seconds, time.perf_counter() - start)

    # Full-scale parity: the columnar path emits bit-identical flows.
    assert table.to_records() == records

    collector = NetFlowCollector(sampling_ratio=SAMPLING_RATIO)
    start = time.perf_counter()
    exported_records = collector.export(records, RngRegistry(99))
    export_record_seconds = time.perf_counter() - start
    start = time.perf_counter()
    exported_table = collector.export_table(table, RngRegistry(99))
    export_table_seconds = time.perf_counter() - start
    assert exported_table.to_records() == exported_records

    speedup = record_seconds / columnar_seconds
    payload = {
        "benchmark": "workload-columnar-generation",
        **bench_env(),
        "flow_count": len(records),
        "days": BENCH_PERIOD.n_days,
        "record_seconds": round(record_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "flows_per_sec": round(len(records) / columnar_seconds),
        "speedup": round(speedup, 2),
        "sampling_ratio": SAMPLING_RATIO,
        "export_record_seconds": round(export_record_seconds, 4),
        "export_table_seconds": round(export_table_seconds, 4),
        "export_speedup": round(export_record_seconds / export_table_seconds, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: columnar workload generation", json.dumps(payload, indent=2))

    # The acceptance bar for this optimization: >= 3x faster period generation.
    assert speedup >= 3.0
