"""Benchmark E-F7: subscriber-line loss when only TLS-certificate data is used (Figure 7)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig7_tls_only_loss


def test_fig7_tls_only_loss(benchmark, context):
    result = benchmark(fig7_tls_only_loss, context)
    emit("Figure 7: decrease in visible IoT subscriber lines (TLS-only discovery)", result.render())

    rows_v4 = [row for row in result.rows if row.ip_version == 4]
    assert rows_v4
    # For the SNI-based provider (T3 = Google) almost no subscriber line would
    # have been detectable from certificate scans alone.
    assert result.decrease_for("T3", 4) > 0.8
    # Several providers lose a noticeable share of their detectable lines, while
    # others are barely affected (Censys covers them completely).
    noticeable_losses = [row for row in rows_v4 if row.decrease_fraction > 0.2]
    small_losses = [row for row in rows_v4 if row.decrease_fraction < 0.1]
    assert len(noticeable_losses) >= 2
    assert len(small_losses) >= 2
