"""Benchmark E-F16: AWS outage impact on subscriber lines (Figure 16)."""

from conftest import emit

from repro.core.disruption import GROUP_EU, GROUP_US_EAST
from repro.experiments.disruption_experiments import fig15_fig16_outage


def test_fig16_outage_subscribers(benchmark, context):
    result = benchmark(fig15_fig16_outage, context)
    emit("Figure 16: AWS us-east-1 outage, subscriber lines of T1", result.render("16"))

    # The number of subscriber lines barely changes: devices keep retrying against
    # their assigned region, so the line drop is far smaller than the traffic drop.
    assert result.line_drop_us_east() < result.traffic_drop_us_east()
    assert result.line_drop_us_east() < 0.25
    # The EU subscriber-line series shows no comparable dip.
    assert result.report.line_drop_vs_previous_week(GROUP_EU) <= result.line_drop_us_east() + 0.05
    # Both region groups keep serving lines every hour of the outage window.
    start, end = result.report.outage_window
    for group in (GROUP_US_EAST, GROUP_EU):
        series = result.report.line_series[group]
        assert any(start <= when < end and value > 0 for when, value in series.items())
