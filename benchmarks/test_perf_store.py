"""Benchmark P-S1: cold vs. warm experiment-context build via the artifact store.

Times how long it takes to get a default-scale context "analysis-ready" (the
scanner-cleaned main-week table of the Section 5 analyses) twice:

* **cold** — an empty artifact store: the world is built, a week of flows is
  generated, NetFlow-sampled, scanner-excluded by a discovery run, and every
  stage is persisted to the store, and
* **warm** — a fresh process-equivalent context (the in-process LRU is
  bypassed) over the now-populated store: the clean table deserializes
  straight from disk and neither generation nor the discovery pipeline runs.

Warm output is asserted bit-identical to cold output, the codec's raw
serialize/deserialize throughput is recorded, and the numbers land in
``BENCH_store.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.experiments.context import build_context
from repro.obs.bench import bench_env
from repro.simulation.config import ScenarioConfig
from repro.store.artifacts import ArtifactStore
from repro.store.codec import dumps_table, loads_table

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_store.json"


def _analysis_ready_seconds(config, store):
    """Build a context (LRU bypassed) and its clean main-week table; time it."""
    start = time.perf_counter()
    context = build_context(config, use_cache=False, store=store)
    table = context.clean_table()
    return time.perf_counter() - start, table, context


def test_perf_store_warm_context(tmp_path):
    config = ScenarioConfig.default(seed=7)
    store = ArtifactStore(tmp_path / "store")

    cold_seconds, cold_table, cold_context = _analysis_ready_seconds(config, store)
    assert cold_context._result is not None  # the cold path ran discovery

    warm_seconds = float("inf")
    warm_table = None
    warm_context = None
    for _ in range(3):
        elapsed, warm_table, warm_context = _analysis_ready_seconds(config, store)
        warm_seconds = min(warm_seconds, elapsed)
    assert warm_context._result is None  # the warm path skipped discovery

    # Warm-start parity: the persisted table is bit-identical to the cold one.
    assert warm_table.to_records() == cold_table.to_records()

    # Raw codec throughput on the clean table.
    start = time.perf_counter()
    blob = dumps_table(cold_table)
    serialize_seconds = time.perf_counter() - start
    start = time.perf_counter()
    loads_table(blob)
    deserialize_seconds = time.perf_counter() - start

    warm_speedup = cold_seconds / warm_seconds
    payload = {
        "benchmark": "store-warm-context",
        **bench_env(),
        "rows": len(cold_table),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(warm_speedup, 2),
        "serialize_seconds": round(serialize_seconds, 4),
        "deserialize_seconds": round(deserialize_seconds, 4),
        "serialized_mb": round(len(blob) / 1e6, 2),
        "store_artifacts": len(store.entries()),
        "store_mb": round(store.total_bytes() / 1e6, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: artifact-store warm context build", json.dumps(payload, indent=2))

    # The acceptance bar for the subsystem: warm-start >= 3x faster than cold.
    assert warm_speedup >= 3.0
