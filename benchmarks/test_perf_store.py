"""Benchmark P-S1: cold vs. warm experiment-context build via the artifact store.

Times how long it takes to get a default-scale context "analysis-ready" (the
scanner-cleaned main-week table of the Section 5 analyses) twice:

* **cold** — an empty artifact store: the world is built, a week of flows is
  generated, NetFlow-sampled, scanner-excluded by a discovery run, and every
  stage is persisted to the store, and
* **warm** — a fresh process-equivalent context (the in-process LRU is
  bypassed) over the now-populated store: the clean table deserializes
  straight from disk and neither generation nor the discovery pipeline runs.

Warm output is asserted bit-identical to cold output, the codec's raw
serialize/deserialize throughput is recorded, and the numbers land in
``BENCH_store.json`` at the repository root.

The zero-copy read path gets its own enforced contrast: the persisted clean
table is re-read warm through the eager decoder and through
:func:`~repro.store.codec.load_table_mmap` (header + pools parsed, columns
left on the map), the mmap table is asserted to re-dump byte-identically, and
``mmap_speedup`` (eager warm read / mmap warm read) must stay >= 1.5x.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.experiments.context import build_context
from repro.flows.flowtable import CATEGORICAL_COLUMNS, NUMERIC_COLUMNS
from repro.obs.bench import bench_env
from repro.simulation.config import ScenarioConfig
from repro.store.artifacts import ArtifactStore
from repro.store.codec import dumps_table, load_table, load_table_mmap, loads_table

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_store.json"


def _analysis_ready_seconds(config, store):
    """Build a context (LRU bypassed) and its clean main-week table; time it."""
    start = time.perf_counter()
    context = build_context(config, use_cache=False, store=store)
    table = context.clean_table()
    return time.perf_counter() - start, table, context


def test_perf_store_warm_context(tmp_path):
    config = ScenarioConfig.default(seed=7)
    store = ArtifactStore(tmp_path / "store")

    cold_seconds, cold_table, cold_context = _analysis_ready_seconds(config, store)
    assert cold_context._result is not None  # the cold path ran discovery

    warm_seconds = float("inf")
    warm_table = None
    warm_context = None
    for _ in range(3):
        elapsed, warm_table, warm_context = _analysis_ready_seconds(config, store)
        warm_seconds = min(warm_seconds, elapsed)
    assert warm_context._result is None  # the warm path skipped discovery

    # Warm-start parity: the persisted table is bit-identical to the cold one.
    assert warm_table.to_records() == cold_table.to_records()

    # Raw codec throughput on the clean table.
    start = time.perf_counter()
    blob = dumps_table(cold_table)
    serialize_seconds = time.perf_counter() - start
    start = time.perf_counter()
    loads_table(blob)
    deserialize_seconds = time.perf_counter() - start

    # Eager vs mmap warm reads of the persisted clean table (best of 5 each).
    table_path = tmp_path / "clean.rft"
    table_path.write_bytes(blob)
    eager_read_seconds = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        with table_path.open("rb") as stream:
            load_table(stream)
        eager_read_seconds = min(eager_read_seconds, time.perf_counter() - start)
    mmap_warm_seconds = float("inf")
    mmap_table = None
    for _ in range(5):
        start = time.perf_counter()
        mmap_table = load_table_mmap(table_path)
        mmap_warm_seconds = min(mmap_warm_seconds, time.perf_counter() - start)
    # Zero-copy parity: the mapped table re-dumps byte-identically.
    assert dumps_table(mmap_table) == blob
    start = time.perf_counter()
    for name in CATEGORICAL_COLUMNS:
        mmap_table.codes(name).materialize()
    for name, _typecode in NUMERIC_COLUMNS:
        mmap_table.numeric(name).materialize()
    mmap_first_touch_seconds = time.perf_counter() - start
    mmap_speedup = eager_read_seconds / mmap_warm_seconds

    warm_speedup = cold_seconds / warm_seconds
    payload = {
        "benchmark": "store-warm-context",
        **bench_env(),
        "rows": len(cold_table),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(warm_speedup, 2),
        "serialize_seconds": round(serialize_seconds, 4),
        "deserialize_seconds": round(deserialize_seconds, 4),
        "eager_read_seconds": round(eager_read_seconds, 4),
        "mmap_warm_seconds": round(mmap_warm_seconds, 4),
        "mmap_first_touch_seconds": round(mmap_first_touch_seconds, 4),
        "mmap_speedup": round(mmap_speedup, 2),
        "serialized_mb": round(len(blob) / 1e6, 2),
        "store_artifacts": len(store.entries()),
        "store_mb": round(store.total_bytes() / 1e6, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: artifact-store warm context build", json.dumps(payload, indent=2))

    # The acceptance bar for the subsystem: warm-start >= 3x faster than cold.
    assert warm_speedup >= 3.0
    # And for the zero-copy read path: mapping beats eager decode >= 1.5x.
    assert mmap_speedup >= 1.5
