"""Benchmark P-S1: sweep campaign fault tolerance.

Measures the two costs the fault-tolerant execution core is allowed to add
and proves both stay negligible:

* **Resume overhead.**  A campaign resumed from a fully-populated ledger must
  reuse every scenario — reading the ledger and matching
  ``(scenario_id, config_digest)`` is the entire cost — so it is enforced to
  be at least ``ENFORCED_RESUME_SPEEDUP``x faster than running the sweep, and
  its outcomes must be bit-identical (via ``ScenarioOutcome.identity``, which
  excludes only the nondeterministic bookkeeping fields such as
  ``elapsed_seconds``).
* **Sustained throughput under faults.**  With a fault hook failing the first
  attempt of every scenario and one retry configured, the campaign must still
  finish every scenario with correct metrics; the measured scenarios/second
  under 100% injected first-attempt failures is recorded.

Numbers land in ``BENCH_sweep.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit

from repro.obs.bench import bench_env
from repro.simulation.config import ScenarioConfig
from repro.sweeps import ScenarioGrid, SweepRunner
from repro.sweeps import runner as runner_module

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: A resumed, fully-complete campaign does no scenario work; anything under
#: this bar means ledger reuse itself has become expensive.
ENFORCED_RESUME_SPEEDUP = 3.0


def _grid() -> ScenarioGrid:
    base = ScenarioConfig.small(seed=47).with_overrides(
        n_subscriber_lines=40, n_scanner_lines=1
    )
    return ScenarioGrid(
        base, {"sampling_ratio": (1, 4, 16), "volume_sigma": (0.5, 0.75)}
    )


def _identities(result) -> dict:
    return {outcome.scenario_id: outcome.identity() for outcome in result.outcomes}


def _fail_first_attempt(scenario_id: str, attempt: int) -> None:
    if attempt == 1:
        raise RuntimeError("injected benchmark fault")


def test_perf_sweep_fault_tolerance(tmp_path):
    grid = _grid()
    n_scenarios = len(grid)
    ledger = tmp_path / "campaign.jsonl"

    start = time.perf_counter()
    full = SweepRunner(metrics=("traffic",), workers=1, ledger_path=ledger).run(grid)
    full_seconds = time.perf_counter() - start
    assert full.failures() == []

    start = time.perf_counter()
    resumed = SweepRunner(metrics=("traffic",), workers=1).run(grid, resume=ledger)
    resume_seconds = time.perf_counter() - start
    assert resumed.reused_count == n_scenarios
    assert _identities(resumed) == _identities(full)
    resume_speedup = full_seconds / resume_seconds

    # Throughput with every scenario failing its first attempt and retrying.
    previous_hook = runner_module.FAULT_HOOK
    runner_module.FAULT_HOOK = _fail_first_attempt
    try:
        start = time.perf_counter()
        faulted = SweepRunner(
            metrics=("traffic",), workers=1, retries=1, backoff=0.0
        ).run(grid)
        faulted_seconds = time.perf_counter() - start
    finally:
        runner_module.FAULT_HOOK = previous_hook
    assert faulted.failures() == []
    assert _identities(faulted) == _identities(full)

    payload = {
        "benchmark": "sweep-fault-tolerance",
        **bench_env(),
        "scenarios": n_scenarios,
        "full_seconds": round(full_seconds, 4),
        "resume_seconds": round(resume_seconds, 4),
        "resume_speedup": round(resume_speedup, 2),
        "injected_failures": n_scenarios,
        "faulted_seconds": round(faulted_seconds, 4),
        "scenarios_per_second": round(n_scenarios / faulted_seconds, 3),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: sweep fault tolerance", json.dumps(payload, indent=2))

    # The acceptance bar: reusing a complete ledger must cost almost nothing.
    assert resume_speedup >= ENFORCED_RESUME_SPEEDUP
