"""Benchmark E-S62: potential disruptions — BGP incidents and blocklists (Section 6.2)."""

from conftest import emit

from repro.experiments.disruption_experiments import sec62_potential_disruptions
from repro.routing.events import EventKind


def test_sec62_potential_disruptions(benchmark, context):
    result = benchmark(sec62_potential_disruptions, context)
    emit("Section 6.2: potential disruptions", result.render())

    # The study week contains many routing incidents (paper: 10 leaks, 40 possible
    # hijacks, 166 AS outages) ...
    counts = result.bgp.counts_by_kind
    assert counts[EventKind.BGP_LEAK] == 10
    assert counts[EventKind.POSSIBLE_HIJACK] == 40
    assert counts[EventKind.AS_OUTAGE] == 166
    # ... none of which touched the discovered backends.
    assert not result.bgp.any_backend_affected

    # A handful of backend addresses appear on blocklists (paper: 16 IPs across 6
    # providers), spread over several categories.
    assert 0 < result.blocklists.total_listed_ips <= context.config.n_blocklisted_backend_ips
    assert len(result.blocklists.providers_affected()) >= 3
    assert len(result.blocklists.category_counts()) >= 2
