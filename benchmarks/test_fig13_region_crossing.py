"""Benchmark E-F13: subscriber lines vs. server continents (Figure 13)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig13_fig14_region_crossing


def test_fig13_region_crossing(benchmark, context):
    result = benchmark(fig13_fig14_region_crossing, context)
    emit("Figure 13: subscriber lines and servers per continent", result.render())

    categories = result.report.line_categories
    # Roughly half of the IoT-hosting lines talk exclusively to European servers.
    assert 0.30 < categories["Europe only"] < 0.70
    assert categories["Europe only"] == max(categories.values())
    # A substantial share of lines contacts servers in the US (exclusively or mixed).
    us_share = categories["US only"] + categories["EU & US"]
    assert us_share > 0.15
    # Asia-only and other combinations stay marginal.
    assert categories["Asia"] < 0.05

    # Server side (right-hand side of Figure 13): most backend servers are in the
    # US, Europe hosts roughly a third, Asia a small share.
    servers = result.servers_per_continent
    assert servers["NA"] > servers["EU"] > servers.get("AS", 0.0)
    assert servers["NA"] > 0.4
    assert 0.2 < servers["EU"] < 0.5
