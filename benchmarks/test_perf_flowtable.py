"""Benchmark P-F1: grouped flow aggregation, record scan vs. columnar table.

Times the seed-equivalent linear pass over ``FlowRecord`` lists against the
columnar :class:`~repro.flows.flowtable.FlowTable` on a >=500k-flow corpus for
the hottest Section 5 aggregation (per provider x hour down/up volume) plus a
distinct-count grouping, and records the numbers in ``BENCH_flowtable.json``
at the repository root so future PRs can track the perf trajectory.
"""

from __future__ import annotations

import json
import random
import time
from collections import defaultdict
from datetime import datetime
from pathlib import Path

from conftest import emit

from repro.flows.flowtable import FlowTable
from repro.flows.netflow import make_flow
from repro.obs.bench import bench_env

FLOW_COUNT = 500_000

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_flowtable.json"

_PROVIDERS = (
    "amazon", "google", "microsoft", "bosch", "siemens", "ibm", "oracle", "sap",
)
_CONTINENTS = ("EU", "NA", "AS")
_PORTS = (443, 8883, 1883, 5683, 5671, 61616)


def _generate_flows(count: int, seed: int = 99) -> list:
    rng = random.Random(seed)
    timestamps = [datetime(2022, 3, 1 + day, hour) for day in range(7) for hour in range(24)]
    flows = []
    for _ in range(count):
        provider = _PROVIDERS[rng.randrange(len(_PROVIDERS))]
        ip_version = 6 if rng.random() < 0.25 else 4
        server = (
            f"fd00::{rng.randrange(1, 4096):x}"
            if ip_version == 6
            else f"10.{rng.randrange(16)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        )
        flows.append(
            make_flow(
                timestamp=timestamps[rng.randrange(len(timestamps))],
                subscriber_id=rng.randrange(20_000),
                subscriber_prefix=f"prefix-{rng.randrange(256)}",
                ip_version=ip_version,
                provider_key=provider,
                server_ip=server,
                server_continent=_CONTINENTS[rng.randrange(len(_CONTINENTS))],
                server_region="eu-central-1",
                transport="tcp" if rng.random() < 0.85 else "udp",
                port=_PORTS[rng.randrange(len(_PORTS))],
                bytes_down=rng.uniform(100, 100_000),
                bytes_up=rng.uniform(10, 10_000),
            )
        )
    return flows


def _naive_volume_by_provider_hour(flows):
    """The seed implementation shape: one attribute-accessing pass per analysis."""
    sums = defaultdict(lambda: [0.0, 0.0])
    for flow in flows:
        bucket = sums[(flow.provider_key, flow.timestamp)]
        bucket[0] += flow.bytes_down
        bucket[1] += flow.bytes_up
    return dict(sums)


def _naive_active_lines_by_provider_hour(flows):
    lines = defaultdict(set)
    for flow in flows:
        lines[(flow.provider_key, flow.timestamp)].add(flow.subscriber_id)
    return {key: len(values) for key, values in lines.items()}


def _best_of(callable_, repeats=3):
    """Best-of-N wall time plus the last result (reduces scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_perf_flowtable_grouped_aggregation():
    flows = _generate_flows(FLOW_COUNT)

    naive_volume_seconds, naive_volume = _best_of(lambda: _naive_volume_by_provider_hour(flows))
    naive_lines_seconds, naive_lines = _best_of(lambda: _naive_active_lines_by_provider_hour(flows))

    start = time.perf_counter()
    table = FlowTable.from_records(flows)
    build_seconds = time.perf_counter() - start

    table_volume_seconds, table_volume = _best_of(
        lambda: table.group_sums(("provider_key", "timestamp"), ("bytes_down", "bytes_up"))
    )
    table_lines_seconds, table_lines = _best_of(
        lambda: table.group_distinct_count(("provider_key", "timestamp"), "subscriber_id")
    )

    # Parity with the naive pass.
    assert set(table_volume) == set(naive_volume)
    for key, (down, up) in naive_volume.items():
        assert abs(table_volume[key][0] - down) < 1e-6 * max(1.0, down)
        assert abs(table_volume[key][1] - up) < 1e-6 * max(1.0, up)
    assert table_lines == naive_lines

    payload = {
        "benchmark": "flowtable-grouped-aggregation",
        **bench_env(),
        "flow_count": len(flows),
        "group_count": len(table_volume),
        "build_seconds": round(build_seconds, 4),
        "naive_volume_seconds": round(naive_volume_seconds, 4),
        "table_volume_seconds": round(table_volume_seconds, 4),
        "volume_rows_per_sec": round(len(flows) / table_volume_seconds),
        "volume_speedup": round(naive_volume_seconds / table_volume_seconds, 2),
        "naive_distinct_seconds": round(naive_lines_seconds, 4),
        "table_distinct_seconds": round(table_lines_seconds, 4),
        "distinct_speedup": round(naive_lines_seconds / table_lines_seconds, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: columnar grouped aggregation", json.dumps(payload, indent=2))

    # The columnar pass must at least keep up with the naive scan; the win is
    # that conversion happens once while the analyses run many aggregations.
    assert table_volume_seconds < naive_volume_seconds * 1.5
