"""Benchmark P-F1: grouped flow aggregation, record scan vs. kernel backends.

Times the seed-equivalent linear pass over ``FlowRecord`` lists against the
grouped-aggregation kernels (:mod:`repro.flows.kernels`) on a >=500k-flow
corpus for the hottest Section 5 aggregation (per provider x hour down/up
volume) plus a distinct-count grouping.  Both kernel backends are measured:
the pure-python fused kernels always, numpy when importable; the headline
``volume_speedup``/``distinct_speedup`` numbers and the ``kernel_backend``
stamp come from the fastest backend available, and the ``python_*`` fields
always record the fallback path so a backend switch can never hide a
regression (``check_bench_schema.py`` requires all of them).

Floors enforced here (the ROADMAP perf-ladder acceptance numbers):

* pure-python fused kernels: volume >= 1.2x the naive scan,
* numpy kernels (when available): volume and distinct >= 5x.
"""

from __future__ import annotations

import json
import random
import time
from collections import defaultdict
from datetime import datetime
from pathlib import Path

from conftest import emit

from repro.flows import kernels
from repro.flows.flowtable import FlowTable
from repro.flows.netflow import make_flow
from repro.obs.bench import bench_env

FLOW_COUNT = 500_000

#: The benchmarked grouping: the Section 5 provider x hour aggregation.
GROUP_BY = ("provider_key", "timestamp")

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_flowtable.json"

_PROVIDERS = (
    "amazon", "google", "microsoft", "bosch", "siemens", "ibm", "oracle", "sap",
)
_CONTINENTS = ("EU", "NA", "AS")
_PORTS = (443, 8883, 1883, 5683, 5671, 61616)


def _generate_flows(count: int, seed: int = 99) -> list:
    rng = random.Random(seed)
    timestamps = [datetime(2022, 3, 1 + day, hour) for day in range(7) for hour in range(24)]
    flows = []
    for _ in range(count):
        provider = _PROVIDERS[rng.randrange(len(_PROVIDERS))]
        ip_version = 6 if rng.random() < 0.25 else 4
        server = (
            f"fd00::{rng.randrange(1, 4096):x}"
            if ip_version == 6
            else f"10.{rng.randrange(16)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        )
        flows.append(
            make_flow(
                timestamp=timestamps[rng.randrange(len(timestamps))],
                subscriber_id=rng.randrange(20_000),
                subscriber_prefix=f"prefix-{rng.randrange(256)}",
                ip_version=ip_version,
                provider_key=provider,
                server_ip=server,
                server_continent=_CONTINENTS[rng.randrange(len(_CONTINENTS))],
                server_region="eu-central-1",
                transport="tcp" if rng.random() < 0.85 else "udp",
                port=_PORTS[rng.randrange(len(_PORTS))],
                bytes_down=rng.uniform(100, 100_000),
                bytes_up=rng.uniform(10, 10_000),
            )
        )
    return flows


def _naive_volume_by_provider_hour(flows):
    """The seed implementation shape: one attribute-accessing pass per analysis."""
    sums = defaultdict(lambda: [0.0, 0.0])
    for flow in flows:
        bucket = sums[(flow.provider_key, flow.timestamp)]
        bucket[0] += flow.bytes_down
        bucket[1] += flow.bytes_up
    return dict(sums)


def _naive_active_lines_by_provider_hour(flows):
    lines = defaultdict(set)
    for flow in flows:
        lines[(flow.provider_key, flow.timestamp)].add(flow.subscriber_id)
    return {key: len(values) for key, values in lines.items()}


def _best_of(callable_, repeats=3):
    """Best-of-N wall time plus the last result (reduces scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure_backend(table: FlowTable, backend: str) -> dict:
    """Time index build + both aggregations on one kernel backend."""
    kernels.set_backend(backend)
    try:
        table._group_cache.clear()
        index_seconds, _ = _best_of(lambda: kernels.build_group_index(table, GROUP_BY))
        # Aggregations run against the cached GroupIndex, as analyses do.
        table.group_index(GROUP_BY)
        volume_seconds, volume = _best_of(
            lambda: table.group_sums(GROUP_BY, ("bytes_down", "bytes_up"))
        )
        distinct_seconds, distinct = _best_of(
            lambda: table.group_distinct_count(GROUP_BY, "subscriber_id")
        )
    finally:
        kernels.set_backend(None)
    return {
        "index_seconds": index_seconds,
        "volume_seconds": volume_seconds,
        "volume": volume,
        "distinct_seconds": distinct_seconds,
        "distinct": distinct,
    }


def test_perf_flowtable_grouped_aggregation():
    flows = _generate_flows(FLOW_COUNT)

    naive_volume_seconds, naive_volume = _best_of(lambda: _naive_volume_by_provider_hour(flows))
    naive_lines_seconds, naive_lines = _best_of(lambda: _naive_active_lines_by_provider_hour(flows))

    start = time.perf_counter()
    table = FlowTable.from_records(flows)
    build_seconds = time.perf_counter() - start

    python_run = _measure_backend(table, kernels.BACKEND_PYTHON)
    runs = {kernels.BACKEND_PYTHON: python_run}
    if kernels.numpy_available():
        runs[kernels.BACKEND_NUMPY] = _measure_backend(table, kernels.BACKEND_NUMPY)

    # Bit-parity with the naive pass on every backend: same keys, same float
    # sums (both accumulate in row order from zero), same distinct counts.
    for run in runs.values():
        assert run["volume"] == naive_volume
        assert run["distinct"] == naive_lines

    headline_backend = (
        kernels.BACKEND_NUMPY if kernels.BACKEND_NUMPY in runs else kernels.BACKEND_PYTHON
    )
    headline = runs[headline_backend]

    payload = {
        "benchmark": "flowtable-grouped-aggregation",
        **bench_env(),
        "kernel_backend": headline_backend,
        "flow_count": len(flows),
        "group_count": len(headline["volume"]),
        "build_seconds": round(build_seconds, 4),
        "index_build_seconds": round(headline["index_seconds"], 4),
        "naive_volume_seconds": round(naive_volume_seconds, 4),
        "table_volume_seconds": round(headline["volume_seconds"], 4),
        "volume_rows_per_sec": round(len(flows) / headline["volume_seconds"]),
        "volume_speedup": round(naive_volume_seconds / headline["volume_seconds"], 2),
        "naive_distinct_seconds": round(naive_lines_seconds, 4),
        "table_distinct_seconds": round(headline["distinct_seconds"], 4),
        "distinct_speedup": round(naive_lines_seconds / headline["distinct_seconds"], 2),
        "python_volume_seconds": round(python_run["volume_seconds"], 4),
        "python_volume_speedup": round(naive_volume_seconds / python_run["volume_seconds"], 2),
        "python_distinct_seconds": round(python_run["distinct_seconds"], 4),
        "python_distinct_speedup": round(naive_lines_seconds / python_run["distinct_seconds"], 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: grouped-aggregation kernels", json.dumps(payload, indent=2))

    # Perf floors: the pure-python fused path must beat the naive scan on the
    # hottest aggregation; the numpy kernels must clear 5x on both.
    assert payload["python_volume_speedup"] >= 1.2
    if headline_backend == kernels.BACKEND_NUMPY:
        assert payload["volume_speedup"] >= 5.0
        assert payload["distinct_speedup"] >= 5.0
