"""Benchmark E-F6: backend visibility per provider from the ISP (Figure 6)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig6_visibility


def test_fig6_visibility(benchmark, context):
    result = benchmark(fig6_visibility, context)
    emit("Figure 6: share of backend server IPs visible from the ISP", result.render())

    # Overall, only part of the discovered backend is contacted from the ISP.
    assert 0.15 < result.overall_ipv4 < 0.80
    # Visibility varies substantially across providers.
    fractions = [row.ipv4_fraction for row in result.rows if row.ipv4_total > 0]
    assert max(fractions) - min(fractions) > 0.4
    # T2 (globally load-balanced) is the most visible of the larger backends;
    # T1 sits around half.
    large_rows = [row for row in result.rows if row.ipv4_total >= 10]
    assert result.row_for("T2").ipv4_fraction == max(row.ipv4_fraction for row in large_rows)
    assert result.row_for("T2").ipv4_fraction > 0.5
    assert 0.25 < result.row_for("T1").ipv4_fraction < 0.75
    # Note: the paper additionally observes near-zero visibility for the two
    # China-focused providers; with only a handful of scaled-down servers per
    # small provider that fraction is too coarse to assert here, so the
    # corresponding check lives in the Figure 8 benchmark (activity volumes).
