"""Benchmark E-T2: regenerate Table 2 (Appendix A regexes and queries)."""

from conftest import emit

from repro.core.providers import PROVIDERS
from repro.experiments.characterization import table2_regexes


def test_table2_regexes(benchmark, context):
    result = benchmark(table2_regexes)
    emit("Table 2: domain patterns and external-service queries", result.render())

    providers = {row["provider"] for row in result.rows}
    assert providers == {spec.name for spec in PROVIDERS}
    flex = [row for row in result.rows if row["api_type"] == "Flexible Search"]
    basic = [row for row in result.rows if row["api_type"] == "Basic Search"]
    censys = [row for row in result.rows if row["data_source"] == "Censys"]
    assert len(flex) == 16
    assert basic and censys
    # The Google queries use the fixed FQDN, as in the paper's appendix.
    google_basic = [row for row in basic if row["provider"] == "Google IoT Core"]
    assert any("mqtt.googleapis.com" in row["query"] for row in google_basic)
    # Every flexible-search query is rrtype-anchored.
    assert all(row["query"].endswith("/A") for row in flex)
