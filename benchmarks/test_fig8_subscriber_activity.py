"""Benchmark E-F8: hourly active subscriber lines per provider (Figure 8)."""

from conftest import emit

from repro.experiments.traffic_experiments import fig8_subscriber_activity


def test_fig8_subscriber_activity(benchmark, context):
    result = benchmark(fig8_subscriber_activity, context)
    emit("Figure 8: active subscriber lines per provider per hour", result.render())

    labels = result.providers()
    assert "T1" in labels and "T2" in labels and "T3" in labels
    # Subscriber-line counts differ by orders of magnitude between providers.
    totals = {label: result.total(label) for label in labels}
    assert max(totals.values()) > 10 * min(totals.values())
    # The prime-time provider (T1) peaks in the evening; the daytime provider (T3)
    # peaks during the day; the constant provider (T2) has no pronounced evening peak.
    assert result.peak_hour("T1") >= 17
    assert 8 <= result.peak_hour("T3") < 20
    # Providers without a European footprint show (at most) marginal activity from
    # the European ISP (the paper excludes them from the rest of the analysis).
    for key in ("huawei", "baidu"):
        label = context.anonymization.label(key)
        if label in labels:
            assert result.total(label) < 0.10 * result.total("T1")
