"""Benchmark P-D1: incremental daily discovery and persisted footprints.

Three contrasts over one multi-day study period, landing in
``BENCH_discovery.json`` at the repository root:

* **cold** — every day is an independent run, as in the paper's daily
  pipeline: a fresh process receives the day's snapshot (so it rebuilds the
  certificate-name index) and a fresh
  :class:`~repro.core.discovery.BackendDiscovery` (fresh compiled engine,
  empty caches) classifies it from scratch.
* **incremental** — one discovery instance carries its per-host
  classification cache across the days: day N+1 only re-classifies hosts
  whose certificate material changed, everything else replays memoized
  verdicts.  The enforced bar is >=3x over cold for the multi-day run, with
  canonically identical results.
* **warm-from-store** — the full multi-source
  :class:`~repro.core.pipeline.PipelineResult` is persisted through the
  artifact store once, then an analysis-ready Table 1 is rebuilt from disk
  without running a single classification (asserted by poisoning the
  classifier), and compared bit-for-bit against the cold pipeline's rows.
"""

from __future__ import annotations

import json
import time
from datetime import date
from pathlib import Path

from conftest import emit

from repro.core.discovery import BackendDiscovery
from repro.core.patterns import PatternSet
from repro.core.pipeline import DiscoveryPipeline
from repro.obs.bench import bench_env
from repro.scan.censys import CensysSnapshot
from repro.simulation.clock import StudyPeriod
from repro.simulation.config import ScenarioConfig
from repro.simulation.world import build_world
from repro.store.artifacts import ArtifactStore, discovery_stage

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_discovery.json"

#: Three weeks of daily snapshots: enough overlap for the incremental contrast
#: to dominate the one unavoidable cold first day.
BENCH_PERIOD = StudyPeriod(date(2022, 2, 28), date(2022, 3, 21), name="bench-incremental")

#: Non-IoT web servers included in every snapshot.  Internet-wide snapshots
#: are overwhelmingly hosts that match no provider pattern; the world's /24
#: of generic hosting caps this at 254.
_NON_IOT_HOSTS = 254

_REPEATS = 3


def _canonical(result):
    """Order-independent canonical form of a discovery result."""
    return sorted(
        (r.provider_key, r.ip, tuple(sorted(r.sources)), tuple(sorted(r.domains)))
        for r in result.records()
    )


def test_perf_discovery_incremental_and_persisted(tmp_path, monkeypatch):
    config = ScenarioConfig.default(seed=7).with_overrides(
        study_period=BENCH_PERIOD, n_non_iot_hosts=_NON_IOT_HOSTS
    )
    world = build_world(config)
    days = BENCH_PERIOD.days()
    # Snapshot *scanning* (host probing, TLS handshakes) is identical for
    # every contestant and happens once, here.  Each timed repetition then
    # receives fresh snapshot objects, the way a daily run receives the day's
    # published snapshot: per-object lazy state (the certificate-name index)
    # is not carried over.
    base_snapshots = [world.censys.snapshot(day) for day in days]

    def fresh_snapshots():
        return [
            CensysSnapshot(snapshot_date=s.snapshot_date, records=dict(s.records))
            for s in base_snapshots
        ]

    cold_seconds = float("inf")
    cold_daily = None
    for _ in range(_REPEATS):
        snapshots = fresh_snapshots()
        start = time.perf_counter()
        daily = [
            BackendDiscovery(PatternSet.for_providers()).discover_from_censys(
                snapshot, use_cache=False
            )
            for snapshot in snapshots
        ]
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
        cold_daily = daily

    incremental_seconds = float("inf")
    incremental_daily = None
    cache_hits = cache_misses = 0
    for _ in range(_REPEATS):
        snapshots = fresh_snapshots()
        discovery = BackendDiscovery(PatternSet.for_providers())
        start = time.perf_counter()
        daily = [discovery.discover_from_censys(snapshot) for snapshot in snapshots]
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)
        incremental_daily = daily
        cache_hits = discovery.host_cache.hits
        cache_misses = discovery.host_cache.misses

    # Correctness bar: the cached multi-day run is identical to the cold one.
    for cold_day, incremental_day in zip(cold_daily, incremental_daily):
        assert _canonical(cold_day) == _canonical(incremental_day)

    # Persisted footprints: one cold pipeline run, then Table 1 from disk.
    store = ArtifactStore(tmp_path / "store")
    pipeline = DiscoveryPipeline(world)
    stage = discovery_stage(pipeline.pattern_set)
    start = time.perf_counter()
    result = pipeline.run(BENCH_PERIOD)
    pipeline_cold_seconds = time.perf_counter() - start
    store.put_pipeline_result(config, BENCH_PERIOD, stage, result)

    # A warm Table 1 build must not classify a single name.
    def _poisoned(*args, **kwargs):
        raise AssertionError("warm path ran certificate classification")

    monkeypatch.setattr(BackendDiscovery, "discover_from_censys", _poisoned)
    warm_seconds = float("inf")
    warm_rows = None
    for _ in range(_REPEATS):
        start = time.perf_counter()
        loaded = store.get_pipeline_result(config, BENCH_PERIOD, stage)
        warm_rows = loaded.table1_rows()
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
    monkeypatch.undo()
    assert warm_rows == result.table1_rows()

    incremental_speedup = cold_seconds / incremental_seconds
    warm_speedup = pipeline_cold_seconds / warm_seconds
    payload = {
        "benchmark": "discovery-incremental",
        **bench_env(),
        "days": len(days),
        "hosts_per_day": round(sum(len(s) for s in base_snapshots) / len(base_snapshots), 1),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "cold_seconds": round(cold_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "incremental_speedup": round(incremental_speedup, 2),
        "pipeline_cold_seconds": round(pipeline_cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(warm_speedup, 2),
        "artifact_mb": round(store.total_bytes() / 1e6, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Benchmark: incremental + persisted discovery", json.dumps(payload, indent=2))

    # The acceptance bar: the incremental multi-day run is >=3x the cold one.
    assert incremental_speedup >= 3.0
